"""Tests for the matrix and vector primitive classes."""

import numpy as np
import pytest

from repro.adt import Matrix, Vector
from repro.errors import ValueRepresentationError


class TestMatrix:
    def test_from_array_casts_to_float64(self):
        mat = Matrix.from_array([[1, 2], [3, 4]])
        assert mat.data.dtype == np.float64
        assert mat.shape == (2, 2)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueRepresentationError):
            Matrix.from_array([1, 2, 3])

    def test_value_identity(self):
        a = Matrix.from_array([[1.0, 2.0]])
        b = Matrix.from_array([[1.0, 2.0]])
        c = Matrix.from_array([[1.0, 3.0]])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_parse_roundtrip(self):
        mat = Matrix.from_array([[1.5, 2.0], [3.0, 4.0]])
        assert Matrix.parse(str(mat)) == mat

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueRepresentationError):
            Matrix.parse("[[1, oops]]")

    def test_data_is_frozen(self):
        mat = Matrix.from_array([[1.0]])
        with pytest.raises(ValueError):
            mat.data[0, 0] = 2.0

    def test_validate_accepts_lists(self):
        assert Matrix.validate([[1, 2]]).ncol == 2

    def test_validate_rejects_scalar(self):
        with pytest.raises(ValueRepresentationError):
            Matrix.validate(3.0)


class TestVector:
    def test_from_array(self):
        vec = Vector.from_array([1, 2, 3])
        assert len(vec) == 3
        assert vec.data.dtype == np.float64

    def test_rejects_2d(self):
        with pytest.raises(ValueRepresentationError):
            Vector.from_array([[1, 2]])

    def test_value_identity(self):
        a = Vector.from_array([1.0, 2.0])
        b = Vector.from_array([1.0, 2.0])
        assert a == b and hash(a) == hash(b)
        assert a != Vector.from_array([2.0, 1.0])

    def test_parse_roundtrip(self):
        vec = Vector.from_array([0.5, -1.0])
        assert Vector.parse(str(vec)) == vec

    def test_data_is_frozen(self):
        vec = Vector.from_array([1.0])
        with pytest.raises(ValueError):
            vec.data[0] = 2.0

    def test_validate_rejects_string(self):
        with pytest.raises(ValueRepresentationError):
            Vector.validate("nope")
