"""Tests for the image primitive class (repro.adt.image)."""

import numpy as np
import pytest

from repro.adt import Image
from repro.errors import ValueRepresentationError


class TestConstruction:
    def test_from_array_with_pixtype(self):
        img = Image.from_array(np.arange(6).reshape(2, 3), "int2")
        assert img.shape == (2, 3)
        assert img.pixtype == "int2"
        assert img.nrow == 2 and img.ncol == 3

    def test_zeros(self):
        img = Image.zeros(4, 5, "float8")
        assert img.shape == (4, 5)
        assert float(img.data.sum()) == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueRepresentationError):
            Image(data=np.zeros(3, dtype=np.float32))

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueRepresentationError):
            Image(data=np.zeros((2, 2), dtype=np.complex128))

    def test_unknown_pixtype_name(self):
        with pytest.raises(ValueRepresentationError):
            Image.from_array(np.zeros((2, 2)), "int128")

    def test_pixels_are_frozen(self, small_image):
        with pytest.raises(ValueError):
            small_image.data[0, 0] = 1.0


class TestExternalRepresentation:
    def test_str_matches_paper_format(self):
        img = Image.zeros(3, 4, "int4")
        assert str(img) == '(3, 4, "int4", "")'

    def test_parse_roundtrip_shape(self):
        img = Image.parse('(3, 4, "float4", "/data/x.img")')
        assert img.shape == (3, 4)
        assert img.pixtype == "float4"
        assert img.filepath == "/data/x.img"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueRepresentationError):
            Image.parse("not an image")

    def test_validate_accepts_array(self):
        img = Image.validate(np.zeros((2, 2), dtype=np.float32))
        assert isinstance(img, Image)

    def test_validate_rejects_int(self):
        with pytest.raises(ValueRepresentationError):
            Image.validate(5)


class TestValueIdentity:
    def test_equal_content_equal_objects(self):
        a = Image.from_array(np.arange(4).reshape(2, 2), "int4")
        b = Image.from_array(np.arange(4).reshape(2, 2), "int4")
        assert a == b
        assert hash(a) == hash(b)

    def test_changing_value_makes_new_object(self):
        a = Image.from_array(np.zeros((2, 2)), "float4")
        changed = Image.from_array(np.ones((2, 2)), "float4")
        assert a != changed

    def test_pixtype_part_of_identity(self):
        a = Image.from_array(np.zeros((2, 2)), "int2")
        b = Image.from_array(np.zeros((2, 2)), "int4")
        assert a != b

    def test_filepath_part_of_identity(self):
        a = Image.from_array(np.zeros((2, 2)), "int2", filepath="x")
        b = Image.from_array(np.zeros((2, 2)), "int2", filepath="y")
        assert a != b

    def test_usable_in_sets(self):
        a = Image.from_array(np.zeros((2, 2)), "int2")
        b = Image.from_array(np.zeros((2, 2)), "int2")
        assert len({a, b}) == 1


class TestAccessors:
    def test_size_eq(self):
        a = Image.zeros(2, 3)
        assert a.size_eq(Image.zeros(2, 3))
        assert not a.size_eq(Image.zeros(3, 2))

    def test_all_pixtypes_work(self):
        for pixtype in ("char", "int2", "int4", "float4", "float8"):
            img = Image.zeros(2, 2, pixtype)
            assert img.pixtype == pixtype
