"""Tests for compound-operator dataflow networks (repro.adt.dataflow)."""

import numpy as np
import pytest

from repro.adt import DataflowNetwork, Image
from repro.errors import (
    DataflowCycleError,
    DataflowWiringError,
    UnknownOperatorError,
)
from repro.figures import build_figure4
from repro.gis import pca


@pytest.fixture()
def simple_net(operators):
    """offset(scale(img)) as a two-node network."""
    net = DataflowNetwork(name="affine", operators=operators)
    net.add_input("img", "image")
    net.add_input("factor", "float8")
    net.add_node("scaled", "img_scale", ["@img", "@factor"])
    net.add_node("shifted", "img_offset", ["scaled", "@factor"])
    net.set_output("shifted")
    return net


class TestWiring:
    def test_duplicate_input_rejected(self, operators):
        net = DataflowNetwork(name="n", operators=operators)
        net.add_input("x", "image")
        with pytest.raises(DataflowWiringError):
            net.add_input("x", "image")

    def test_unknown_operator_rejected(self, operators):
        net = DataflowNetwork(name="n", operators=operators)
        net.add_input("x", "image")
        with pytest.raises(UnknownOperatorError):
            net.add_node("a", "no_such_op", ["@x"])

    def test_unknown_source_rejected(self, operators):
        net = DataflowNetwork(name="n", operators=operators)
        with pytest.raises(DataflowWiringError):
            net.add_node("a", "img_nrow", ["@ghost"])

    def test_forward_reference_rejected(self, operators):
        net = DataflowNetwork(name="n", operators=operators)
        net.add_input("x", "image")
        with pytest.raises(DataflowWiringError):
            net.add_node("a", "img_scale", ["later", "@x"])

    def test_output_must_exist(self, operators):
        net = DataflowNetwork(name="n", operators=operators)
        with pytest.raises(DataflowWiringError):
            net.set_output("nope")

    def test_validate_needs_output(self, operators):
        net = DataflowNetwork(name="n", operators=operators)
        net.add_input("x", "image")
        net.add_node("a", "img_nrow", ["@x"])
        with pytest.raises(DataflowWiringError):
            net.validate()


class TestExecution:
    def test_executes_in_order(self, simple_net, small_image):
        out = simple_net.execute(img=small_image, factor=2.0)
        expected = small_image.data.astype(np.float64) * 2.0 + 2.0
        assert np.allclose(out.data, expected, atol=1e-6)

    def test_missing_binding(self, simple_net, small_image):
        with pytest.raises(DataflowWiringError):
            simple_net.execute(img=small_image)

    def test_extra_binding(self, simple_net, small_image):
        with pytest.raises(DataflowWiringError):
            simple_net.execute(img=small_image, factor=1.0, bogus=3)

    def test_trace_returns_every_node(self, simple_net, small_image):
        values = simple_net.trace(img=small_image, factor=1.0)
        assert set(values) == {"scaled", "shifted"}
        assert isinstance(values["scaled"], Image)

    def test_schedule_is_topological(self, simple_net):
        order = simple_net.schedule()
        assert order.index("scaled") < order.index("shifted")


class TestAsOperator:
    def test_promoted_network_is_callable(self, simple_net, operators,
                                          small_image):
        simple_net.as_operator("image")
        out = operators.apply("affine", small_image, 3.0)
        assert np.allclose(
            out.data, small_image.data.astype(np.float64) * 3.0 + 3.0,
            atol=1e-5,
        )

    def test_promoted_network_appears_in_browse(self, simple_net, operators):
        simple_net.as_operator("image")
        assert "affine" in operators.names()


class TestFigure4Network:
    """The PCA network must match the direct PCA computation."""

    def test_schedule_matches_figure(self, operators):
        net = build_figure4(operators)
        order = net.schedule()
        assert order == ["to_matrices", "covariance", "eigenvector",
                         "combined", "to_images"]

    def test_matches_direct_pca(self, operators, scene_generator):
        net = build_figure4(operators)
        images = [scene_generator.band("africa", y, 7, "nir")
                  for y in (1986, 1987, 1988)]
        network_out = net.execute(images=images)
        direct, _ = pca(images, 1)
        assert len(network_out) == 1
        assert np.allclose(network_out[0].data, direct[0].data, atol=1e-5)

    def test_threshold_two_images_enough(self, operators, scene_generator):
        net = build_figure4(operators)
        images = [scene_generator.band("africa", y, 7, "nir")
                  for y in (1986, 1987)]
        assert len(net.execute(images=images)) == 1

    def test_one_image_violates_threshold(self, operators, scene_generator):
        from repro.errors import ADTError

        net = build_figure4(operators)
        images = [scene_generator.band("africa", 1986, 7, "nir")]
        with pytest.raises(ADTError):
            net.execute(images=images)
