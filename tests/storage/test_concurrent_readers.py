"""Stress tests: many snapshot readers against one live writer.

16 reader threads continuously scan (heap order) and index-probe (B-tree
range) while a single writer thread interleaves committing and aborting
transactions.  The invariants checked on every read:

* **no torn reads** — a scan's result set is exactly the committed keys
  of some moment (all-or-nothing per transaction, since each transaction
  writes a recognizable batch);
* **no duplicate or missing oids** within one scan;
* **abort purge never surfaces** — keys written by aborted transactions
  are never visible, before or after the purge of their index entries;
* a **pinned snapshot** re-read at the end still sees its original rows.
"""

from __future__ import annotations

import threading
import time

from repro.adt import make_standard_registries
from repro.storage import StorageEngine

_READERS = 16
_BATCHES = 40
_BATCH = 5  # rows per transaction; commits are all-or-nothing per batch


def _engine() -> StorageEngine:
    engine = StorageEngine(types=make_standard_registries()[0])
    engine.create_relation("t", [("k", "int4"), ("batch", "int4")])
    engine.create_index("t", "k", order=8)
    return engine


class TestConcurrentReaders:
    def test_sixteen_readers_one_writer(self):
        engine = _engine()
        committed_batches: set[int] = set()  # grows monotonically
        aborted_batches: set[int] = set()
        failures: list[str] = []
        stop = threading.Event()
        start_gate = threading.Barrier(_READERS + 1)

        def writer():
            start_gate.wait()
            try:
                for batch in range(_BATCHES):
                    tx = engine.begin()
                    for i in range(_BATCH):
                        engine.insert("t", (batch * _BATCH + i, batch), tx)
                    if batch % 3 == 2:
                        aborted_batches.add(batch)
                        engine.abort(tx)
                    else:
                        # Order matters: a reader may snapshot between
                        # commit and this record-keeping, so the batch
                        # must be in the set *before* it can be seen...
                        # except sets lack atomic "add before commit".
                        # Instead readers tolerate supersets: a batch
                        # seen but not yet recorded is re-checked after
                        # the writer finishes.
                        engine.commit(tx)
                        committed_batches.add(batch)
                    # A short pause per batch keeps the writer alive long
                    # enough for every reader to overlap it many times.
                    time.sleep(0.001)
            finally:
                stop.set()

        def reader(probe: bool):
            start_gate.wait()
            while not stop.is_set():
                snap = engine.snapshot()
                if probe:
                    rows = list(engine.iter_range(
                        "t", "k", 0, _BATCHES * _BATCH, snapshot=snap
                    ))
                else:
                    rows = list(engine.scan("t", snap))
                keys = [row["k"] for row in rows]
                if len(keys) != len(set(keys)):
                    failures.append(f"duplicate keys in one scan: {keys}")
                    return
                by_batch: dict[int, set[int]] = {}
                for row in rows:
                    by_batch.setdefault(row["batch"], set()).add(row["k"])
                for batch, seen in by_batch.items():
                    if batch in aborted_batches:
                        failures.append(
                            f"aborted batch {batch} surfaced: {seen}"
                        )
                        return
                    expected = {batch * _BATCH + i for i in range(_BATCH)}
                    if seen != expected:
                        failures.append(
                            f"torn batch {batch}: {sorted(seen)}"
                        )
                        return

        pinned = engine.snapshot()
        pinned_before = sorted(r["k"] for r in engine.scan("t", pinned))

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(i % 2 == 0,))
                    for i in range(_READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), \
            "stress threads did not finish"
        assert not failures, failures[0]

        # Final state: exactly the committed batches, via scan and probe.
        snap = engine.snapshot()
        final = sorted(row["k"] for row in engine.scan("t", snap))
        expected = sorted(
            batch * _BATCH + i
            for batch in committed_batches for i in range(_BATCH)
        )
        assert final == expected
        probed = sorted(
            row["k"] for row in engine.iter_range(
                "t", "k", 0, _BATCHES * _BATCH, snapshot=snap
            )
        )
        assert probed == expected
        # The pre-stress pinned snapshot is still exactly its old self.
        assert sorted(
            r["k"] for r in engine.scan("t", pinned)
        ) == pinned_before

    def test_readers_never_block_on_writer_lock(self):
        """A reader scanning while the writer holds the engine write lock
        makes progress: reads take no engine-level lock."""
        engine = _engine()
        tx = engine.begin()
        for i in range(20):
            engine.insert("t", (i, 0), tx)
        engine.commit(tx)

        scanned = threading.Event()

        def read_under_writer_lock():
            rows = list(engine.scan("t"))
            if len(rows) == 20:
                scanned.set()

        with engine._write_lock:  # simulate a writer mid-operation
            thread = threading.Thread(target=read_under_writer_lock)
            thread.start()
            thread.join(timeout=10)
        assert scanned.is_set(), "reader blocked on the engine write lock"
