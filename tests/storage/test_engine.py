"""Tests for the storage engine facade."""

import pytest

from repro.errors import (
    StorageError,
    TupleNotFoundError,
    UnknownRelationError,
)
from repro.spatial import Box
from repro.storage import StorageEngine
from repro.temporal import AbsTime


@pytest.fixture()
def engine(types):
    eng = StorageEngine(types=types)
    eng.create_relation("scenes", [
        ("area", "char16"),
        ("spatialextent", "box"),
        ("timestamp", "abstime"),
        ("resolution", "float4"),
    ])
    return eng


def _row(area="africa", x=0.0, day=0, res=30.0):
    return (area, Box(x, 0, x + 5, 5), AbsTime(day), res)


class TestDML:
    def test_insert_and_scan(self, engine):
        engine.insert_row("scenes", _row())
        engine.insert_row("scenes", _row("asia", 10.0))
        rows = list(engine.scan("scenes"))
        assert [r["area"] for r in rows] == ["africa", "asia"]

    def test_unknown_relation(self, engine):
        with pytest.raises(UnknownRelationError):
            engine.insert_row("ghost", _row())

    def test_delete_is_no_overwrite(self, engine):
        tid = engine.insert_row("scenes", _row())
        engine.delete_row("scenes", tid)
        stats = engine.stats("scenes")
        assert stats["versions"] == 1  # the version is still stored
        assert stats["visible_rows"] == 0

    def test_double_delete_rejected(self, engine):
        tid = engine.insert_row("scenes", _row())
        engine.delete_row("scenes", tid)
        with pytest.raises(TupleNotFoundError):
            engine.delete_row("scenes", tid)

    def test_update_creates_new_version(self, engine):
        tid = engine.insert_row("scenes", _row(res=30.0))
        tx = engine.begin()
        new_tid = engine.update("scenes", tid, _row(res=60.0), tx)
        engine.commit(tx)
        assert new_tid != tid
        assert engine.stats("scenes")["versions"] == 2
        [row] = list(engine.scan("scenes"))
        assert row["resolution"] == 60.0


class TestTransactionSemantics:
    def test_uncommitted_invisible_to_others(self, engine):
        tx = engine.begin()
        engine.insert("scenes", _row(), tx)
        assert list(engine.scan("scenes")) == []
        engine.commit(tx)
        assert len(list(engine.scan("scenes"))) == 1

    def test_own_writes_visible(self, engine):
        tx = engine.begin()
        engine.insert("scenes", _row(), tx)
        snap = engine.snapshot(tx)
        assert len(list(engine.scan("scenes", snapshot=snap))) == 1
        engine.abort(tx)

    def test_aborted_writes_never_appear(self, engine):
        tx = engine.begin()
        engine.insert("scenes", _row(), tx)
        engine.abort(tx)
        assert list(engine.scan("scenes")) == []

    def test_failed_autocommit_aborts(self, engine):
        with pytest.raises(Exception):
            engine.insert_row("scenes", ("bad arity",))
        assert list(engine.scan("scenes")) == []

    def test_old_snapshot_ignores_later_commits(self, engine):
        snap = engine.snapshot()
        engine.insert_row("scenes", _row())
        assert list(engine.scan("scenes", snapshot=snap)) == []


class TestIndexes:
    def test_btree_lookup(self, engine):
        engine.create_index("scenes", "area")
        for i in range(6):
            engine.insert_row("scenes", _row(f"r{i % 2}", float(i)))
        assert len(engine.lookup("scenes", "area", "r0")) == 3

    def test_btree_built_over_existing_rows(self, engine):
        engine.insert_row("scenes", _row("x"))
        engine.create_index("scenes", "area")
        assert len(engine.lookup("scenes", "area", "x")) == 1

    def test_range_lookup(self, engine):
        engine.create_index("scenes", "resolution")
        for res in (10.0, 20.0, 30.0, 40.0):
            engine.insert_row("scenes", _row(res=res))
        rows = engine.range_lookup("scenes", "resolution", 15.0, 35.0)
        assert sorted(r["resolution"] for r in rows) == [20.0, 30.0]

    def test_lookup_respects_visibility(self, engine):
        engine.create_index("scenes", "area")
        tid = engine.insert_row("scenes", _row("gone"))
        engine.delete_row("scenes", tid)
        assert engine.lookup("scenes", "area", "gone") == []

    def test_missing_index_error(self, engine):
        with pytest.raises(StorageError):
            engine.lookup("scenes", "area", "x")

    def test_spatial_index(self, engine):
        engine.create_spatial_index("scenes", "spatialextent",
                                    universe=Box(-180, -90, 180, 90))
        engine.insert_row("scenes", _row(x=0.0))
        engine.insert_row("scenes", _row(x=50.0))
        rows = engine.spatial_lookup("scenes", Box(-1, -1, 6, 6))
        assert len(rows) == 1

    def test_spatial_index_requires_box_column(self, engine):
        with pytest.raises(StorageError):
            engine.create_spatial_index("scenes", "area",
                                        universe=Box(0, 0, 1, 1))

    def test_temporal_index(self, engine):
        engine.create_temporal_index("scenes", "timestamp")
        engine.insert_row("scenes", _row(day=10))
        engine.insert_row("scenes", _row(day=20))
        assert len(engine.temporal_lookup("scenes", AbsTime(10))) == 1
        timeline = engine.timeline_of("scenes")
        assert timeline.bracketing(AbsTime(15)) == (AbsTime(10), AbsTime(20))

    def test_duplicate_index_rejected(self, engine):
        engine.create_index("scenes", "area")
        with pytest.raises(StorageError):
            engine.create_index("scenes", "area")


class TestRecovery:
    def test_recover_replays_committed_work(self, engine, types):
        engine.insert_row("scenes", _row("keep"))
        tx = engine.begin()
        engine.insert("scenes", _row("lost"), tx)
        engine.abort(tx)
        tid = engine.insert_row("scenes", _row("deleted"))
        engine.delete_row("scenes", tid)

        recovered = StorageEngine.recover(engine.wal, types)
        rows = list(recovered.scan("scenes"))
        assert [r["area"] for r in rows] == ["keep"]
        # The committed-but-deleted version replays (no-overwrite keeps
        # it, invisible); the aborted insert is skipped entirely.
        assert recovered.stats("scenes")["versions"] == 2

    def test_recover_preserves_xid_floor(self, engine, types):
        engine.insert_row("scenes", _row())
        recovered = StorageEngine.recover(engine.wal, types)
        old_xids = {r.xid for r in engine.wal}
        assert recovered.begin().xid > max(old_xids)

    def test_recovered_engine_accepts_new_work(self, engine, types):
        engine.insert_row("scenes", _row())
        recovered = StorageEngine.recover(engine.wal, types)
        recovered.insert_row("scenes", _row("new"))
        assert len(list(recovered.scan("scenes"))) == 2
