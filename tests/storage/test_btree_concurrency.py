"""Regression test: lazy histogram builds and range scans are safe
against concurrent inserts.

The histogram is built lazily inside ``BTree.histogram`` and cached;
before the tree was locked, two threads could interleave the stale-count
check with a rebuild (serving a half-built bucket tuple), and a range
scan could walk a node mid-split.  This hammers one tree with inserter
threads while reader threads build histograms and scan ranges.
"""

from __future__ import annotations

import threading

from repro.storage import BTree

_INSERTERS = 4
_READERS = 4
_KEYS_PER_INSERTER = 500


class TestBTreeUnderThreads:
    def test_histogram_and_scan_race_inserts(self):
        tree = BTree(order=8)
        for i in range(50):
            tree.insert(i, ("seed", i))

        errors: list[BaseException] = []
        stop = threading.Event()
        gate = threading.Barrier(_INSERTERS + _READERS)

        def inserter(base: int):
            try:
                gate.wait()
                for i in range(_KEYS_PER_INSERTER):
                    tree.insert(100_000 + base * 10_000 + i, ("t", base, i))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                gate.wait()
                while not stop.is_set():
                    hist = tree.histogram()
                    if hist is not None:
                        # A served histogram is always fully built:
                        # buckets tile [lo, hi] in order, counts > 0.
                        for bucket in hist:
                            assert bucket.entries > 0
                            assert bucket.lo <= bucket.hi
                        for left, right in zip(hist, hist[1:]):
                            assert left.hi <= right.lo
                    scanned = list(tree.range_scan(0, 49))
                    # The seeded keys never move; a torn node split
                    # would drop or duplicate some of them.
                    keys = [key for key, _entries in scanned]
                    assert keys == sorted(set(keys))
                    assert len(keys) == 50
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=inserter, args=(t,))
                   for t in range(_INSERTERS)]
        threads += [threading.Thread(target=reader)
                    for _ in range(_READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), \
            "stress threads did not finish"
        assert not errors, f"tree raced: {errors[0]!r}"

        # Everything inserted is findable afterwards.
        assert len(tree) == 50 + _INSERTERS * _KEYS_PER_INSERTER
        for base in range(_INSERTERS):
            assert tree.search(100_000 + base * 10_000) == {("t", base, 0)}

    def test_chunked_scan_sees_stable_prefix_under_inserts(self):
        """A chunked snapshot scan re-seeks from its last key; keys
        committed before the scan started must all appear exactly once
        even while new keys pour in behind and ahead of the cursor."""
        tree = BTree(order=6)
        baseline = list(range(0, 2000, 2))  # even keys
        for key in baseline:
            tree.insert(key, ("base", key))

        stop = threading.Event()
        errors: list[BaseException] = []

        def inserter():
            try:
                key = 1
                while not stop.is_set():  # odd keys, interleaved
                    tree.insert(key, ("new", key))
                    key += 2
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=inserter)
        thread.start()
        try:
            for _ in range(20):
                seen = [key for key, _entries in tree.range_scan(0, 1999)]
                evens = [key for key in seen if key % 2 == 0]
                assert evens == baseline, "baseline keys torn by scan"
                assert seen == sorted(seen), "scan out of order"
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not errors, f"inserter failed: {errors[0]!r}"
