"""Tests for transactions and snapshot visibility."""

import pytest

from repro.errors import TransactionError
from repro.storage import (
    Snapshot,
    TransactionManager,
    TupleVersion,
    TxStatus,
    visible,
)


class TestLifecycle:
    def test_begin_assigns_increasing_xids(self):
        mgr = TransactionManager()
        assert mgr.begin().xid < mgr.begin().xid

    def test_commit(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        mgr.commit(tx)
        assert tx.status is TxStatus.COMMITTED
        assert mgr.status_of(tx.xid) is TxStatus.COMMITTED

    def test_abort(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        mgr.abort(tx)
        assert mgr.status_of(tx.xid) is TxStatus.ABORTED

    def test_double_commit_rejected(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        mgr.commit(tx)
        with pytest.raises(TransactionError):
            mgr.commit(tx)

    def test_commit_after_abort_rejected(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        mgr.abort(tx)
        with pytest.raises(TransactionError):
            mgr.commit(tx)

    def test_unknown_xid(self):
        with pytest.raises(TransactionError):
            TransactionManager().status_of(99)


class TestSnapshots:
    def test_snapshot_excludes_uncommitted(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        snap = mgr.snapshot()
        assert not snap.sees(tx.xid)

    def test_snapshot_includes_committed(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        mgr.commit(tx)
        assert mgr.snapshot().sees(tx.xid)

    def test_own_writes_visible(self):
        mgr = TransactionManager()
        tx = mgr.begin()
        snap = mgr.snapshot(for_tx=tx)
        assert snap.sees(tx.xid)

    def test_snapshot_is_frozen_in_time(self):
        mgr = TransactionManager()
        snap = mgr.snapshot()
        tx = mgr.begin()
        mgr.commit(tx)
        assert not snap.sees(tx.xid)  # committed after the snapshot


class TestVisibility:
    def test_visible_when_creator_committed(self):
        version = TupleVersion(values=("a",), xmin=1)
        assert visible(version, Snapshot(committed=frozenset({1})))

    def test_invisible_when_creator_uncommitted(self):
        version = TupleVersion(values=("a",), xmin=1)
        assert not visible(version, Snapshot(committed=frozenset()))

    def test_invisible_after_committed_delete(self):
        version = TupleVersion(values=("a",), xmin=1, xmax=2)
        assert not visible(version, Snapshot(committed=frozenset({1, 2})))

    def test_visible_while_delete_uncommitted(self):
        version = TupleVersion(values=("a",), xmin=1, xmax=2)
        assert visible(version, Snapshot(committed=frozenset({1})))

    def test_own_delete_visible_to_self(self):
        version = TupleVersion(values=("a",), xmin=1, xmax=5)
        snap = Snapshot(committed=frozenset({1}), own_xid=5)
        assert not visible(version, snap)


class TestRecoveryHooks:
    def test_force_committed(self):
        mgr = TransactionManager()
        mgr.force_committed(10)
        assert mgr.status_of(10) is TxStatus.COMMITTED
        assert mgr.begin().xid > 10

    def test_restore_xid_floor(self):
        mgr = TransactionManager()
        mgr.restore_xid_floor(100)
        assert mgr.begin().xid >= 100
