"""Tests for the write-ahead log."""

import pytest

from repro.errors import WALError
from repro.storage import LogKind, WriteAheadLog, read_log_file


class TestAppend:
    def test_lsns_are_dense(self):
        wal = WriteAheadLog()
        records = [wal.append(LogKind.BEGIN, xid=1),
                   wal.append(LogKind.COMMIT, xid=1)]
        assert [r.lsn for r in records] == [1, 2]
        wal.verify()

    def test_committed_xids(self):
        wal = WriteAheadLog()
        wal.append(LogKind.BEGIN, xid=1)
        wal.append(LogKind.BEGIN, xid=2)
        wal.append(LogKind.COMMIT, xid=1)
        wal.append(LogKind.ABORT, xid=2)
        assert wal.committed_xids() == {1}

    def test_verify_detects_corruption(self):
        wal = WriteAheadLog()
        wal.append(LogKind.BEGIN, xid=1)
        wal._records[0] = type(wal._records[0])(
            lsn=99, kind=LogKind.BEGIN, xid=1, payload={}
        )
        with pytest.raises(WALError):
            wal.verify()

    def test_payload_preserved(self):
        wal = WriteAheadLog()
        record = wal.append(LogKind.INSERT, xid=3,
                            payload={"relation": "r", "values": (1, 2)})
        assert record.payload["values"] == (1, 2)


class TestFileMirroring:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog()
        wal.attach_file(path)
        wal.append(LogKind.BEGIN, xid=1)
        wal.append(LogKind.INSERT, xid=1, payload={"relation": "r"})
        wal.append(LogKind.COMMIT, xid=1)
        wal.close()
        records = read_log_file(path)
        assert [r.kind for r in records] == [
            LogKind.BEGIN, LogKind.INSERT, LogKind.COMMIT
        ]

    def test_double_attach_rejected(self, tmp_path):
        wal = WriteAheadLog()
        wal.attach_file(tmp_path / "a.log")
        with pytest.raises(WALError):
            wal.attach_file(tmp_path / "b.log")
        wal.close()

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_bytes(b"not a pickle stream")
        with pytest.raises(WALError):
            read_log_file(path)
