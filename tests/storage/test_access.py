"""Unit tests for the cost-based access-path chooser."""

import pytest

from repro.spatial import Box
from repro.storage import StorageEngine
from repro.storage.access import (
    INDEX_PROBE_COST,
    SEQ_ROW_COST,
    choose_access_path,
    estimate_range_rows,
)
from repro.temporal import AbsTime


@pytest.fixture()
def engine(types):
    eng = StorageEngine(types=types)
    eng.create_relation("readings", [
        ("code", "int4"),
        ("value", "float8"),
        ("cell", "box"),
        ("at", "abstime"),
    ])
    for i in range(200):
        eng.insert_row("readings", (
            i % 20, float(i),
            Box(i % 10, i % 10, i % 10 + 1, i % 10 + 1), AbsTime(i % 5),
        ))
    return eng


class TestChoice:
    def test_no_predicates_full_scan(self, engine):
        path = choose_access_path(engine, "readings")
        assert path.kind == "full-scan"
        assert path.estimated_rows == 200
        assert path.cost == 200 * SEQ_ROW_COST

    def test_equality_without_index_stays_residual(self, engine):
        path = choose_access_path(engine, "readings",
                                  equals=(("code", 7),))
        assert path.kind == "full-scan"
        assert path.residual == ("code=7",)

    def test_selective_equality_rides_the_btree(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings",
                                  equals=(("code", 7),))
        assert path.kind == "index-eq"
        assert path.column == "code" and path.argument == 7
        assert path.estimated_rows == pytest.approx(10.0)  # 200/20 keys
        assert path.residual == ()  # the probe consumes the predicate

    def test_range_window_collapses_and_prices(self, engine):
        engine.create_index("readings", "value")
        path = choose_access_path(
            engine, "readings",
            ranges=(("value", ">=", 190.0), ("value", "<", 195.0)),
        )
        assert path.kind == "index-range"
        assert path.argument == (190.0, 195.0)
        assert path.estimated_rows < 20  # interpolated, not 1/3 default

    def test_unselective_range_prefers_full_scan(self, engine):
        engine.create_index("readings", "value")
        path = choose_access_path(engine, "readings",
                                  ranges=(("value", ">=", 0.0),))
        # The window covers every key: the scan is cheaper than probing
        # the index and fetching every row at random-access cost.
        assert path.kind == "full-scan"
        assert path.residual == ("value>=0.0",)

    def test_unconsumed_predicates_are_residual(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(
            engine, "readings",
            equals=(("code", 7),),
            ranges=(("value", ">", 50.0),),
        )
        assert path.kind == "index-eq"
        assert path.residual == ("value>50.0",)

    def test_stamp_matches_catalog_version(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings")
        assert path.index_version == engine.catalog.index_version


class TestRangeEstimate:
    def test_interpolates_numeric_bounds(self):
        est = estimate_range_rows(100, (0.0, 100.0), 25.0, 75.0)
        assert est == pytest.approx(50.0)

    def test_open_sides_clamp_to_key_bounds(self):
        est = estimate_range_rows(100, (0.0, 100.0), None, 10.0)
        assert est == pytest.approx(10.0)

    def test_non_numeric_keys_fall_back(self):
        est = estimate_range_rows(90, ("a", "z"), "f", None)
        assert 1.0 <= est < 90

    def test_empty_index(self):
        assert estimate_range_rows(0, None, 1, 2) == 0.0

    def test_probe_cost_floor(self):
        # A probe is never free: even a 1-row estimate pays the descent.
        assert INDEX_PROBE_COST > 0


class TestStrictRangeResiduals:
    def test_strict_ops_remain_residual(self, engine, types):
        # The B-tree window is inclusive, so > and < must be re-checked
        # per row and reported as residual in the plan dump.
        engine.create_index("readings", "value")
        path = choose_access_path(
            engine, "readings",
            ranges=(("value", ">", 190.0), ("value", "<=", 195.0)),
        )
        assert path.kind == "index-range"
        assert path.residual == ("value>190.0",)
