"""Unit tests for the cost-based access-path chooser."""

import pytest

from repro.spatial import Box
from repro.storage import StorageEngine
from repro.storage.access import (
    INDEX_PROBE_COST,
    SEQ_ROW_COST,
    choose_access_path,
    estimate_eq_rows,
    estimate_range_rows,
)
from repro.storage.btree import BTree
from repro.temporal import AbsTime


@pytest.fixture()
def engine(types):
    eng = StorageEngine(types=types)
    eng.create_relation("readings", [
        ("code", "int4"),
        ("value", "float8"),
        ("cell", "box"),
        ("at", "abstime"),
    ])
    for i in range(200):
        eng.insert_row("readings", (
            i % 20, float(i),
            Box(i % 10, i % 10, i % 10 + 1, i % 10 + 1), AbsTime(i % 5),
        ))
    return eng


class TestChoice:
    def test_no_predicates_full_scan(self, engine):
        path = choose_access_path(engine, "readings")
        assert path.kind == "full-scan"
        assert path.estimated_rows == 200
        assert path.cost == 200 * SEQ_ROW_COST

    def test_equality_without_index_stays_residual(self, engine):
        path = choose_access_path(engine, "readings",
                                  equals=(("code", 7),))
        assert path.kind == "full-scan"
        assert path.residual == ("code=7",)

    def test_selective_equality_rides_the_btree(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings",
                                  equals=(("code", 7),))
        assert path.kind == "index-eq"
        assert path.column == "code" and path.argument == 7
        assert path.estimated_rows == pytest.approx(10.0)  # 200/20 keys
        assert path.residual == ()  # the probe consumes the predicate

    def test_range_window_collapses_and_prices(self, engine):
        engine.create_index("readings", "value")
        path = choose_access_path(
            engine, "readings",
            ranges=(("value", ">=", 190.0), ("value", "<", 195.0)),
        )
        assert path.kind == "index-range"
        assert path.argument == (190.0, 195.0)
        assert path.estimated_rows < 20  # interpolated, not 1/3 default

    def test_unselective_range_prefers_full_scan(self, engine):
        engine.create_index("readings", "value")
        path = choose_access_path(engine, "readings",
                                  ranges=(("value", ">=", 0.0),))
        # The window covers every key: the scan is cheaper than probing
        # the index and fetching every row at random-access cost.
        assert path.kind == "full-scan"
        assert path.residual == ("value>=0.0",)

    def test_unconsumed_predicates_are_residual(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(
            engine, "readings",
            equals=(("code", 7),),
            ranges=(("value", ">", 50.0),),
        )
        assert path.kind == "index-eq"
        assert path.residual == ("value>50.0",)

    def test_stamp_matches_catalog_version(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings")
        assert path.index_version == engine.catalog.index_version


class TestRangeEstimate:
    def test_interpolates_numeric_bounds(self):
        est = estimate_range_rows(100, (0.0, 100.0), 25.0, 75.0)
        assert est == pytest.approx(50.0)

    def test_open_sides_clamp_to_key_bounds(self):
        est = estimate_range_rows(100, (0.0, 100.0), None, 10.0)
        assert est == pytest.approx(10.0)

    def test_non_numeric_keys_fall_back(self):
        est = estimate_range_rows(90, ("a", "z"), "f", None)
        assert 1.0 <= est < 90

    def test_empty_index(self):
        assert estimate_range_rows(0, None, 1, 2) == 0.0

    def test_probe_cost_floor(self):
        # A probe is never free: even a 1-row estimate pays the descent.
        assert INDEX_PROBE_COST > 0


def _skewed_tree() -> BTree:
    """900 entries packed into [0, 1], 100 spread over (1, 1000]."""
    tree = BTree(order=16)
    entry = 0
    for i in range(900):
        tree.insert(i / 900.0, entry)
        entry += 1
    for i in range(100):
        tree.insert(1.0 + (i + 1) * 9.99, entry)
        entry += 1
    return tree


class TestEquiDepthHistogram:
    def test_buckets_hold_roughly_equal_depth(self):
        hist = _skewed_tree().histogram(max_buckets=20)
        assert hist is not None
        depths = [bucket.entries for bucket in hist]
        assert sum(depths) == 1000
        # Equi-depth: no bucket is wildly over target (1000/20 = 50).
        assert max(depths) <= 3 * 50
        # The dense cluster gets narrow buckets, the tail wide ones.
        widths = [bucket.hi - bucket.lo for bucket in hist]
        assert min(widths[:3]) < widths[-1] / 10

    def test_non_numeric_keys_yield_none(self):
        tree = BTree(order=16)
        for i, word in enumerate(["ant", "bee", "cat", "dog", "elk"] * 4):
            tree.insert(word, i)
        assert tree.histogram() is None

    def test_histogram_is_cached_until_drift(self):
        tree = _skewed_tree()
        first = tree.histogram()
        assert tree.histogram() is first  # cached object
        for i in range(500):  # >20% drift forces a rebuild
            tree.insert(2000.0 + i, 10_000 + i)
        rebuilt = tree.histogram()
        assert rebuilt is not first
        assert sum(b.entries for b in rebuilt) == 1500

    def test_skewed_range_estimate_beats_uniform(self):
        """Uniform interpolation prices the sparse tail at ~50% of all
        entries; the histogram knows ~10% live there."""
        tree = _skewed_tree()
        bounds = tree.key_bounds()
        uniform = estimate_range_rows(1000, bounds, 500.0, 1000.0)
        informed = estimate_range_rows(1000, bounds, 500.0, 1000.0,
                                       histogram=tree.histogram())
        actual = sum(
            len(bucket) for _, bucket in tree.range_scan(500.0, 1000.0)
        )
        assert uniform > 400          # the uniform guess: ~half the tree
        assert informed < 120         # histogram: the thin tail
        assert abs(informed - actual) < abs(uniform - actual)

    def test_dense_range_estimate(self):
        tree = _skewed_tree()
        informed = estimate_range_rows(1000, tree.key_bounds(), 0.0, 1.0,
                                       histogram=tree.histogram())
        assert informed > 700  # the dense cluster really is ~900 rows

    def test_eq_estimate_uses_local_density(self):
        tree = BTree(order=16)
        entry = 0
        for _ in range(300):  # one very hot key
            tree.insert(5.0, entry)
            entry += 1
        for i in range(100):  # 100 singleton keys far away
            tree.insert(1000.0 + i, entry)
            entry += 1
        hist = tree.histogram(max_buckets=16)
        hot = estimate_eq_rows(400, tree.distinct_keys(), hist, 5.0)
        cold = estimate_eq_rows(400, tree.distinct_keys(), hist, 1050.0)
        uniform = estimate_eq_rows(400, tree.distinct_keys(), None, 5.0)
        assert hot > 100       # local density sees the hot key
        assert cold < 20       # and the sparse tail
        assert uniform == pytest.approx(400 / 101)

    def test_engine_access_info_carries_histograms(self, engine):
        engine.create_index("readings", "value")
        info = engine.access_info("readings")
        hist = info["btrees"]["value"]["histogram"]
        assert hist is not None
        assert sum(bucket.entries for bucket in hist) == 200


class TestIndexOnlyCandidates:
    def test_covering_projection_marks_index_only(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings",
                                  equals=(("code", 7),),
                                  needed_columns=("code",))
        assert path.kind == "index-eq" and path.index_only
        assert "index-only" in path.describe()

    def test_non_covering_projection_is_not_index_only(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings",
                                  equals=(("code", 7),),
                                  needed_columns=("code", "value"))
        assert not path.index_only

    def test_extent_probe_disables_index_only(self, engine):
        engine.create_index("readings", "code")
        path = choose_access_path(engine, "readings",
                                  temporal=AbsTime(3),
                                  equals=(("code", 7),),
                                  needed_columns=("code",))
        assert not path.index_only

    def test_index_only_is_cheaper(self, engine):
        engine.create_index("readings", "code")
        covering = choose_access_path(engine, "readings",
                                      equals=(("code", 7),),
                                      needed_columns=("code",))
        fetching = choose_access_path(engine, "readings",
                                      equals=(("code", 7),))
        assert covering.cost < fetching.cost


class TestStrictRangeResiduals:
    def test_strict_ops_remain_residual(self, engine, types):
        # The B-tree window is inclusive, so > and < must be re-checked
        # per row and reported as residual in the plan dump.
        engine.create_index("readings", "value")
        path = choose_access_path(
            engine, "readings",
            ranges=(("value", ">", 190.0), ("value", "<=", 195.0)),
        )
        assert path.kind == "index-range"
        assert path.residual == ("value>190.0",)
