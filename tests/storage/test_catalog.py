"""Tests for the system catalog."""

import pytest

from repro.errors import (
    RelationExistsError,
    StorageError,
    UnknownRelationError,
    UnknownTypeError,
    ValueRepresentationError,
)
from repro.storage import Catalog


@pytest.fixture()
def catalog(types):
    return Catalog(types=types)


class TestSchemas:
    def test_create_and_get(self, catalog):
        schema = catalog.create("scenes", [("name", "char16"),
                                           ("res", "float4")])
        assert schema.column_names == ("name", "res")
        assert catalog.get("scenes") is schema
        assert "scenes" in catalog

    def test_duplicate_relation(self, catalog):
        catalog.create("r", [("a", "int4")])
        with pytest.raises(RelationExistsError):
            catalog.create("r", [("a", "int4")])

    def test_unknown_type_rejected(self, catalog):
        with pytest.raises(UnknownTypeError):
            catalog.create("r", [("a", "ghost_type")])

    def test_duplicate_columns_rejected(self, catalog):
        with pytest.raises(StorageError):
            catalog.create("r", [("a", "int4"), ("a", "float4")])

    def test_drop(self, catalog):
        catalog.create("r", [("a", "int4")])
        catalog.drop("r")
        with pytest.raises(UnknownRelationError):
            catalog.get("r")
        with pytest.raises(UnknownRelationError):
            catalog.drop("r")

    def test_index_and_type_of(self, catalog):
        schema = catalog.create("r", [("a", "int4"), ("b", "char16")])
        assert schema.index_of("b") == 1
        assert schema.type_of("b") == "char16"
        with pytest.raises(StorageError):
            schema.index_of("zzz")


class TestRowValidation:
    def test_normalizes_values(self, catalog):
        catalog.create("r", [("a", "int4"), ("b", "float4")])
        row = catalog.validate_row("r", (5, 1))
        assert row == (5, 1.0)
        assert isinstance(row[1], float)

    def test_wrong_arity(self, catalog):
        catalog.create("r", [("a", "int4")])
        with pytest.raises(StorageError):
            catalog.validate_row("r", (1, 2))

    def test_wrong_type(self, catalog):
        catalog.create("r", [("a", "int4")])
        with pytest.raises(ValueRepresentationError):
            catalog.validate_row("r", ("not an int",))

    def test_as_dict(self, catalog):
        schema = catalog.create("r", [("a", "int4"), ("b", "char16")])
        assert schema.as_dict((1, "x")) == {"a": 1, "b": "x"}
        with pytest.raises(StorageError):
            schema.as_dict((1,))
