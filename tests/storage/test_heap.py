"""Tests for slotted pages and heap files."""

import numpy as np
import pytest

from repro.adt import Image
from repro.errors import PageFullError, TupleNotFoundError
from repro.storage import TID, HeapFile, SlottedPage, TupleVersion


def _version(payload="x", xmin=1) -> TupleVersion:
    return TupleVersion(values=(payload,), xmin=xmin)


class TestSlottedPage:
    def test_insert_and_get(self):
        page = SlottedPage(page_no=0)
        slot = page.insert(_version("a"))
        assert page.get(slot).values == ("a",)

    def test_slots_grow_monotonically(self):
        page = SlottedPage(page_no=0)
        slots = [page.insert(_version(str(i))) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_page_full(self):
        page = SlottedPage(page_no=0, capacity=64)
        with pytest.raises(PageFullError):
            while True:
                page.insert(_version("payload"))

    def test_bad_slot(self):
        page = SlottedPage(page_no=0)
        with pytest.raises(TupleNotFoundError):
            page.get(0)

    def test_free_space_decreases(self):
        page = SlottedPage(page_no=0)
        before = page.free_space
        page.insert(_version("abc"))
        assert page.free_space < before


class TestHeapFile:
    def test_insert_returns_stable_tids(self):
        heap = HeapFile(name="t")
        tids = [heap.insert(_version(str(i))) for i in range(10)]
        assert len(set(tids)) == 10
        for i, tid in enumerate(tids):
            assert heap.get(tid).values == (str(i),)

    def test_scan_in_tid_order(self):
        heap = HeapFile(name="t")
        for i in range(20):
            heap.insert(_version(str(i)))
        scanned = [v.values[0] for _, v in heap.scan()]
        assert scanned == [str(i) for i in range(20)]

    def test_spills_to_new_pages(self):
        heap = HeapFile(name="t", page_bytes=256)
        for i in range(50):
            heap.insert(_version(f"payload-{i}"))
        assert heap.page_count > 1
        assert heap.version_count() == 50

    def test_oversized_tuple_gets_toast_page(self):
        heap = HeapFile(name="t", page_bytes=1024)
        big = Image.from_array(np.zeros((64, 64)), "float8")
        version = TupleVersion(values=(big,), xmin=1)
        tid = heap.insert(version)
        assert heap.get(tid).values[0] == big

    def test_small_tuples_after_oversized(self):
        heap = HeapFile(name="t", page_bytes=1024)
        big = Image.from_array(np.zeros((64, 64)), "float8")
        heap.insert(TupleVersion(values=(big,), xmin=1))
        tid = heap.insert(_version("small"))
        assert heap.get(tid).values == ("small",)

    def test_get_bad_page(self):
        heap = HeapFile(name="t")
        with pytest.raises(TupleNotFoundError):
            heap.get(TID(page=4, slot=0))
