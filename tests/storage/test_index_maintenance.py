"""Index maintenance across transactions and rollback.

Secondary indexes (attribute B-trees, the spatial grid, the temporal
timeline) must never retain pointers to row versions that were rolled
back — neither entries added by insert-time maintenance nor entries an
index build loaded from a still-in-flight transaction.
"""

import pytest

from repro import connect
from repro.errors import StorageError
from repro.spatial import Box
from repro.storage import StorageEngine
from repro.temporal import AbsTime


@pytest.fixture()
def engine(types):
    eng = StorageEngine(types=types)
    eng.create_relation("scenes", [
        ("area", "char16"),
        ("spatialextent", "box"),
        ("timestamp", "abstime"),
        ("resolution", "float4"),
    ])
    return eng


def _row(area="africa", x=0.0, day=0, res=30.0):
    return (area, Box(x, 0, x + 5, 5), AbsTime(day), res)


def _btree_entries(eng, relation="scenes"):
    info = eng.access_info(relation)
    return {col: stats["entries"] for col, stats in info["btrees"].items()}


class TestRollbackPurgesBtree:
    def test_insert_then_rollback_leaves_no_dead_oids(self, engine):
        engine.create_index("scenes", "area")
        tx = engine.begin()
        engine.insert("scenes", _row("ghana"), tx)
        assert _btree_entries(engine)["area"] == 1
        engine.abort(tx)
        assert _btree_entries(engine)["area"] == 0
        assert list(engine.iter_lookup("scenes", "area", "ghana")) == []

    def test_commit_keeps_entries(self, engine):
        engine.create_index("scenes", "area")
        tx = engine.begin()
        engine.insert("scenes", _row("ghana"), tx)
        engine.commit(tx)
        assert _btree_entries(engine)["area"] == 1
        [row] = list(engine.iter_lookup("scenes", "area", "ghana"))
        assert row["area"] == "ghana"

    def test_rollback_purges_only_own_entries(self, engine):
        engine.create_index("scenes", "area")
        engine.insert_row("scenes", _row("kenya"))  # autocommitted
        tx = engine.begin()
        engine.insert("scenes", _row("ghana"), tx)
        engine.abort(tx)
        assert _btree_entries(engine)["area"] == 1
        [row] = list(engine.iter_lookup("scenes", "area", "kenya"))
        assert row["area"] == "kenya"

    def test_index_built_over_uncommitted_insert_is_purged_on_abort(
            self, engine):
        tx = engine.begin()
        engine.insert("scenes", _row("ghana"), tx)
        # The build loads the in-flight version (the inserting
        # transaction would expect to see its own writes)...
        engine.create_index("scenes", "area")
        assert _btree_entries(engine)["area"] == 1
        # ...but a rollback must purge it like any other entry.
        engine.abort(tx)
        assert _btree_entries(engine)["area"] == 0

    def test_index_built_after_abort_skips_dead_versions(self, engine):
        tx = engine.begin()
        engine.insert("scenes", _row("ghana"), tx)
        engine.abort(tx)
        engine.create_index("scenes", "area")
        assert _btree_entries(engine)["area"] == 0


class TestRollbackPurgesExtentIndexes:
    def test_spatial_entries_purged(self, engine):
        engine.create_spatial_index("scenes", "spatialextent",
                                    universe=Box(0, 0, 100, 100))
        tx = engine.begin()
        engine.insert("scenes", _row(), tx)
        engine.abort(tx)
        info = engine.access_info("scenes")
        assert info["spatial_entries"] == 0

    def test_temporal_entries_purged(self, engine):
        engine.create_temporal_index("scenes", "timestamp")
        tx = engine.begin()
        engine.insert("scenes", _row(day=3), tx)
        engine.abort(tx)
        info = engine.access_info("scenes", temporal=AbsTime(3))
        assert info["temporal_estimate"] == 0


class TestCatalogRegistration:
    def test_create_registers_and_bumps_version(self, engine):
        before = engine.catalog.index_version
        index = engine.create_index("scenes", "area")
        assert engine.catalog.index_version > before
        assert index.kind == "btree"
        assert engine.catalog.find_index("scenes", "area", "btree") == index
        assert index in engine.catalog.indexes_of("scenes")

    def test_drop_by_name_removes_structure_and_bumps_version(self, engine):
        index = engine.create_index("scenes", "area")
        before = engine.catalog.index_version
        engine.drop_index_named(index.name)
        assert engine.catalog.index_version > before
        assert not engine.has_index("scenes", "area")
        with pytest.raises(StorageError):
            next(engine.iter_lookup("scenes", "area", "ghana"))

    def test_drop_unknown_name_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.drop_index_named("no_such_index")

    def test_duplicate_index_rejected_without_half_registration(
            self, engine):
        engine.create_index("scenes", "area")
        before = engine.catalog.index_version
        with pytest.raises(StorageError):
            engine.create_index("scenes", "area")
        assert engine.catalog.index_version == before


class TestClientLevelRollback:
    """The ISSUE's acceptance scenario, driven through the client API."""

    DDL = """
    DEFINE CLASS station (
      ATTRIBUTES: code = int4; name = char16;
      SPATIAL EXTENT: cell = box;
      TEMPORAL EXTENT: timestamp = abstime;
    )
    """

    def test_create_index_insert_rollback_leaves_index_empty(self):
        conn = connect(universe=Box(0, 0, 100, 100))
        cur = conn.cursor()
        cur.run(self.DDL)
        cur.execute("CREATE INDEX ON station (code)")
        engine = conn.kernel.store.engine
        relation = conn.kernel.store.relation_for("station")

        conn.kernel.store.store("station", {
            "code": 9, "name": "s0",
            "cell": Box(5, 5, 6, 6),
            "timestamp": AbsTime.from_ymd(1990, 1, 1),
        })  # autocommitted; keeps the class non-empty after rollback

        conn.begin()
        conn.kernel.store.store("station", {
            "code": 7, "name": "s1",
            "cell": Box(1, 1, 2, 2),
            "timestamp": AbsTime.from_ymd(1990, 1, 1),
        })
        assert engine.access_info(relation)["btrees"]["code"]["entries"] == 2
        conn.rollback()

        # The rolled-back oid is gone from the B-tree: only the
        # committed row's entry remains, and the probe finds nothing.
        assert engine.access_info(relation)["btrees"]["code"]["entries"] == 1
        assert cur.execute("SELECT FROM station WHERE code = 7") \
                  .fetchall() == []
        [kept] = cur.execute("SELECT FROM station WHERE code = 9").fetchall()
        assert kept["name"] == "s0"


class TestAutomaticIndexesProtected:
    """The OID B-tree and extent indexes are load-bearing: dropping
    them would break object fetch and the interpolation path."""

    def test_extent_indexes_cannot_be_dropped_by_name(self):
        conn = connect(universe=Box(0, 0, 100, 100))
        conn.cursor().run(TestClientLevelRollback.DDL)
        store = conn.kernel.store
        relation = store.relation_for("station")
        for index in store.engine.catalog.indexes_of(relation):
            if index.kind != "btree" or index.column == "_oid":
                with pytest.raises(StorageError, match="automatic"):
                    store.drop_index_named(index.name)

    def test_oid_index_cannot_be_dropped(self):
        conn = connect(universe=Box(0, 0, 100, 100))
        conn.cursor().run(TestClientLevelRollback.DDL)
        with pytest.raises(StorageError, match="automatic"):
            conn.kernel.store.drop_attribute_index("station", "_oid")

    def test_user_indexes_still_droppable_by_name(self):
        conn = connect(universe=Box(0, 0, 100, 100))
        cur = conn.cursor()
        cur.run(TestClientLevelRollback.DDL)
        [result] = cur.execute("CREATE INDEX ON station (code)").results
        name = result.details["index"]
        dropped = conn.kernel.store.drop_index_named(name)
        assert dropped.column == "code"
