"""Tests for the B-tree index."""

import random

import pytest

from repro.errors import IndexError_
from repro.storage import BTree


class TestBasics:
    def test_insert_and_search(self):
        tree = BTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.insert(7, "c")
        assert tree.search(5) == {"a", "b"}
        assert tree.search(7) == {"c"}
        assert tree.search(99) == set()
        assert len(tree) == 3

    def test_duplicate_pair_idempotent(self):
        tree = BTree(order=4)
        tree.insert(1, "x")
        tree.insert(1, "x")
        assert len(tree) == 1

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BTree(order=2)

    def test_delete(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        tree.delete(1, "a")
        assert tree.search(1) == {"b"}
        assert len(tree) == 1

    def test_delete_missing(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        with pytest.raises(IndexError_):
            tree.delete(2, "a")
        with pytest.raises(IndexError_):
            tree.delete(1, "zzz")


class TestScaling:
    def test_many_keys_sorted(self):
        tree = BTree(order=8)
        keys = list(range(1000))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, f"t{key}")
        assert tree.keys() == sorted(range(1000))
        assert tree.depth() > 1
        for key in (0, 500, 999):
            assert tree.search(key) == {f"t{key}"}

    def test_reverse_insert_order(self):
        tree = BTree(order=4)
        for key in range(200, 0, -1):
            tree.insert(key, key)
        assert tree.keys() == list(range(1, 201))

    def test_string_keys(self):
        tree = BTree(order=4)
        for word in ("pear", "apple", "mango", "fig"):
            tree.insert(word, word.upper())
        assert tree.keys() == ["apple", "fig", "mango", "pear"]


class TestRangeScan:
    @pytest.fixture()
    def tree(self):
        t = BTree(order=4)
        for key in range(0, 100, 10):
            t.insert(key, f"e{key}")
        return t

    def test_closed_range(self, tree):
        got = [k for k, _ in tree.range_scan(20, 50)]
        assert got == [20, 30, 40, 50]

    def test_exclusive_bounds(self, tree):
        got = [k for k, _ in tree.range_scan(20, 50, include_lo=False,
                                             include_hi=False)]
        assert got == [30, 40]

    def test_open_ended(self, tree):
        assert [k for k, _ in tree.range_scan(lo=70)] == [70, 80, 90]
        assert [k for k, _ in tree.range_scan(hi=20)] == [0, 10, 20]
        assert len(list(tree.range_scan())) == 10

    def test_range_between_keys(self, tree):
        assert list(tree.range_scan(41, 49)) == []

    def test_entries_are_copies(self, tree):
        for _, bucket in tree.range_scan(0, 0):
            bucket.add("mutation")
        assert tree.search(0) == {"e0"}


class TestReversedScan:
    @pytest.fixture()
    def tree(self):
        t = BTree(order=4)
        for key in range(0, 100, 10):
            t.insert(key, f"e{key}")
        return t

    def test_items_reversed(self, tree):
        got = [k for k, _ in tree.items_reversed()]
        assert got == list(range(90, -10, -10))

    def test_items_reversed_carries_entries(self, tree):
        top_key, entries = next(tree.items_reversed())
        assert top_key == 90
        assert entries == {"e90"}

    def test_reverse_closed_range(self, tree):
        got = [k for k, _ in tree.range_scan(20, 50, reverse=True)]
        assert got == [50, 40, 30, 20]

    def test_reverse_exclusive_bounds(self, tree):
        got = [k for k, _ in tree.range_scan(20, 50, include_lo=False,
                                             include_hi=False, reverse=True)]
        assert got == [40, 30]

    def test_reverse_open_ended(self, tree):
        assert [k for k, _ in tree.range_scan(lo=70, reverse=True)] \
            == [90, 80, 70]
        assert [k for k, _ in tree.range_scan(hi=20, reverse=True)] \
            == [20, 10, 0]

    def test_reverse_matches_forward_at_scale(self):
        tree = BTree(order=8)
        keys = list(range(997))
        random.Random(11).shuffle(keys)
        for key in keys:
            tree.insert(key, f"t{key}")
        forward = [k for k, _ in tree.range_scan(100, 900)]
        backward = [k for k, _ in tree.range_scan(100, 900, reverse=True)]
        assert backward == forward[::-1]
        assert [k for k, _ in tree.items_reversed()] == list(range(996, -1, -1))

    def test_reverse_entries_are_copies(self, tree):
        for _, bucket in tree.range_scan(0, 0, reverse=True):
            bucket.add("mutation")
        assert tree.search(0) == {"e0"}

    def test_reverse_empty_tree(self):
        assert list(BTree(order=4).items_reversed()) == []

    def test_reverse_bounded_scan_at_scale(self):
        # A hi-bounded descending walk must seek its start leaf (the
        # descent prunes subtrees above hi) and still be exact.
        tree = BTree(order=8)
        for key in range(5000):
            tree.insert(key, f"t{key}")
        got = [k for k, _ in tree.range_scan(10, 25, reverse=True)]
        assert got == list(range(25, 9, -1))
        got = [k for k, _ in tree.range_scan(hi=3, reverse=True)]
        assert got == [3, 2, 1, 0]
        got = [k for k, _ in tree.range_scan(lo=4996, reverse=True)]
        assert got == [4999, 4998, 4997, 4996]
