"""Cross-layer integration tests: the full Gaea loop.

Each test exercises several layers at once — GaeaQL through the
interpreter, the planner over the Petri net, process execution through
the ADT operators, storage with indexes and WAL underneath.
"""

import numpy as np
import pytest

from repro.errors import UnderivableError
from repro.figures import (
    AFRICA,
    build_figure2,
    build_figure5,
    populate_scenes,
)
from repro.storage import StorageEngine
from repro.temporal import AbsTime


@pytest.fixture()
def catalog():
    catalog = build_figure2()
    populate_scenes(catalog, seed=21, size=16, years=(1988, 1989))
    return catalog


class TestFullDerivationLoop:
    def test_deep_chain_derives_transitively(self, catalog):
        """desert_smoothed_c5 needs desert_rain250_c2 which needs rainfall:
        one query fires the whole chain."""
        result = catalog.session.execute_one("SELECT FROM desert_smoothed_c5")
        assert result.path == "derive"
        assert result.details["plan_steps"] == ["P2", "P5"]
        lineage = catalog.kernel.provenance.lineage(result.objects[0].oid)
        assert lineage.processes_used() == ["P2", "P5"]
        assert lineage.depth == 2

    def test_derivation_persists_to_storage(self, catalog):
        catalog.session.execute_one("SELECT FROM desert_rain250_c2")
        relation = catalog.kernel.store.relation_for("desert_rain250_c2")
        rows = list(catalog.kernel.engine.scan(relation))
        assert len(rows) == 1

    def test_memoization_across_query_paths(self, catalog):
        """SELECT-derive then RUN with the same inputs reuses the task."""
        first = catalog.session.execute_one("SELECT FROM desert_rain250_c2")
        producer = catalog.kernel.provenance.tasks.producer_of(
            first.objects[0].oid
        )
        rain_oid = producer.input_oids["rain"][0]
        rerun = catalog.session.execute_one(
            f"RUN P2 WITH rain = ({rain_oid})"
        )
        assert rerun.details["reused"]
        assert rerun.objects[0].oid == first.objects[0].oid

    def test_temporal_query_separates_years(self, catalog):
        r88 = catalog.session.execute_one(
            "SELECT FROM land_cover_c20 WHERE timestamp = '1988-07-01'"
        )
        r89 = catalog.session.execute_one(
            "SELECT FROM land_cover_c20 WHERE timestamp = '1989-07-01'"
        )
        assert r88.objects[0]["timestamp"] == AbsTime.from_ymd(1988, 7, 1)
        assert r89.objects[0]["timestamp"] == AbsTime.from_ymd(1989, 7, 1)
        assert r88.objects[0].oid != r89.objects[0].oid

    def test_interpolation_between_derived_years(self, catalog):
        for year in (1988, 1989):
            catalog.session.execute_one(
                f"SELECT FROM ndvi_c6 WHERE timestamp = '{year}-07-01'"
            )
        mid = catalog.session.execute_one(
            "SELECT FROM ndvi_c6 WHERE timestamp = '1989-01-01'"
        )
        assert mid.path == "interpolate"
        lo = catalog.kernel.store.find(
            "ndvi_c6", temporal=AbsTime.from_ymd(1988, 7, 1))[0]
        hi = catalog.kernel.store.find(
            "ndvi_c6", temporal=AbsTime.from_ymd(1989, 7, 1))[0]
        got = mid.objects[0]["data"].data
        assert float(got.min()) >= min(float(lo["data"].data.min()),
                                       float(hi["data"].data.min())) - 1e-6
        assert float(got.max()) <= max(float(lo["data"].data.max()),
                                       float(hi["data"].data.max())) + 1e-6


class TestExperimentReproducibility:
    def test_experiment_reproduces_bitwise(self, catalog):
        kernel = catalog.kernel
        experiment = kernel.experiments.begin(
            name="land-cover-1988", concepts=set(),
        )
        result = catalog.session.execute_one(
            "SELECT FROM land_cover_c20 WHERE timestamp = '1988-07-01'"
        )
        producer = kernel.derivations.tasks.producer_of(
            result.objects[0].oid
        )
        experiment.add_task(producer.task_id)
        [rerun] = kernel.experiments.reproduce(experiment.experiment_id)
        assert rerun.output["data"] == result.objects[0]["data"]

    def test_compound_lineage_survives_wal_recovery(self, catalog):
        """After a crash, the recovered storage still holds every object
        the compound derivation created."""
        kernel = catalog.kernel
        build_figure5(catalog)
        scenes = kernel.store.objects("landsat_tm_rectified")
        early = [o for o in scenes if o["timestamp"].year == 1988]
        late = [o for o in scenes if o["timestamp"].year == 1989]
        result = kernel.derivations.execute_compound(
            "land-change-detection", {"tm_early": early, "tm_late": late}
        )
        relation = kernel.store.relation_for("land_cover_changes_c21")
        recovered = StorageEngine.recover(kernel.engine.wal, kernel.types)
        rows = list(recovered.scan(relation))
        assert len(rows) == 1
        assert np.array_equal(rows[0]["data"].data,
                              result.output["data"].data)


class TestConceptLevelQueries:
    def test_desert_concept_query_covers_all_derivations(self, catalog):
        results = catalog.session.execute("SELECT FROM hot_trade_wind_desert")
        classes = {r.details["class"] for r in results}
        assert classes == {
            "desert_rain250_c2", "desert_rain200_c3",
            "desert_aridity_c4", "desert_smoothed_c5",
        }

    def test_different_cutoffs_classify_differently(self, catalog):
        d250 = catalog.session.execute_one("SELECT FROM desert_rain250_c2")
        d200 = catalog.session.execute_one("SELECT FROM desert_rain200_c3")
        m250 = d250.objects[0]["data"].data != 0
        m200 = d200.objects[0]["data"].data != 0
        # 200 mm deserts are a strict subset of 250 mm deserts here.
        assert np.all(~m200 | m250)
        assert m250.sum() > m200.sum()

    def test_provenance_distinguishes_the_variants(self, catalog):
        d250 = catalog.session.execute_one("SELECT FROM desert_rain250_c2")
        d200 = catalog.session.execute_one("SELECT FROM desert_rain200_c3")
        assert catalog.kernel.provenance.same_concept_different_derivation(
            d250.objects[0].oid, d200.objects[0].oid
        )


class TestFailureHandling:
    def test_underivable_when_no_base_data(self):
        empty = build_figure2()
        with pytest.raises(UnderivableError):
            empty.session.execute("SELECT FROM land_cover_c20")

    def test_failed_tasks_are_recorded(self, catalog):
        kernel = catalog.kernel
        scenes = kernel.store.objects("landsat_tm_rectified")[:2]
        with pytest.raises(Exception):
            kernel.derivations.execute_process("P20", {"bands": scenes})
        assert len(kernel.derivations.tasks.failed()) == 1

    def test_spatial_mismatch_query(self, catalog):
        from repro.spatial import Box

        with pytest.raises(UnderivableError):
            catalog.session.kernel.planner.retrieve(
                "land_cover_c20", spatial=Box(500, 500, 510, 510)
            )
