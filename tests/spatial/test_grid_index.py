"""Tests for the grid spatial index."""

import pytest

from repro.errors import SpatialError
from repro.spatial import Box, GridIndex


@pytest.fixture()
def index():
    return GridIndex(universe=Box(0, 0, 100, 100), nx=10, ny=10)


class TestInsertRemove:
    def test_insert_and_query(self, index):
        index.insert("a", Box(5, 5, 15, 15))
        index.insert("b", Box(50, 50, 60, 60))
        assert index.query(Box(0, 0, 20, 20)) == {"a"}
        assert index.query(Box(0, 0, 100, 100)) == {"a", "b"}
        assert len(index) == 2

    def test_duplicate_id_rejected(self, index):
        index.insert("a", Box(0, 0, 1, 1))
        with pytest.raises(SpatialError):
            index.insert("a", Box(2, 2, 3, 3))

    def test_outside_universe_goes_to_overflow(self, index):
        index.insert("far", Box(200, 200, 300, 300))
        assert index.query(Box(250, 250, 260, 260)) == {"far"}
        assert index.query(Box(0, 0, 50, 50)) == set()
        index.remove("far")
        assert "far" not in index

    def test_remove(self, index):
        index.insert("a", Box(5, 5, 15, 15))
        index.remove("a")
        assert index.query(Box(0, 0, 100, 100)) == set()
        assert "a" not in index

    def test_remove_unknown(self, index):
        with pytest.raises(SpatialError):
            index.remove("ghost")


class TestQueries:
    def test_query_filters_false_positives(self, index):
        # Same grid cell, but extents do not overlap the query box.
        index.insert("a", Box(0, 0, 4, 4))
        index.insert("b", Box(6, 6, 9, 9))
        assert index.query(Box(0, 0, 5, 5)) == {"a"}

    def test_query_contained(self, index):
        index.insert("inside", Box(10, 10, 20, 20))
        index.insert("straddling", Box(15, 15, 40, 40))
        assert index.query_contained(Box(5, 5, 25, 25)) == {"inside"}

    def test_extent_of(self, index):
        box = Box(1, 2, 3, 4)
        index.insert("x", box)
        assert index.extent_of("x") == box
        with pytest.raises(SpatialError):
            index.extent_of("ghost")

    def test_spanning_extent_found_from_any_cell(self, index):
        index.insert("wide", Box(0, 45, 100, 55))
        assert "wide" in index.query(Box(90, 50, 95, 52))
        assert "wide" in index.query(Box(2, 50, 3, 52))

    def test_boundary_extent(self, index):
        index.insert("edge", Box(95, 95, 100, 100))
        assert index.query(Box(99, 99, 100, 100)) == {"edge"}


class TestValidation:
    def test_bad_resolution(self):
        with pytest.raises(SpatialError):
            GridIndex(universe=Box(0, 0, 1, 1), nx=0, ny=5)

    def test_zero_area_universe(self):
        with pytest.raises(SpatialError):
            GridIndex(universe=Box(0, 0, 0, 5))
