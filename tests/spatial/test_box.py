"""Tests for spatial boxes (repro.spatial.box)."""

import pytest

from repro.errors import SpatialError, ValueRepresentationError
from repro.spatial import Box


class TestConstruction:
    def test_basic(self):
        box = Box(0, 0, 2, 3)
        assert box.width == 2 and box.height == 3 and box.area == 6

    def test_degenerate_rejected(self):
        with pytest.raises(SpatialError):
            Box(2, 0, 1, 1)
        with pytest.raises(SpatialError):
            Box(0, 2, 1, 1)

    def test_zero_area_allowed(self):
        assert Box(1, 1, 1, 1).area == 0.0

    def test_center(self):
        assert Box(0, 0, 4, 2).center == (2.0, 1.0)


class TestRepresentation:
    def test_parse(self):
        box = Box.parse("(0, 0, 10, 5)")
        assert box == Box(0, 0, 10, 5)
        assert box.ref_system == "long/lat"

    def test_parse_with_ref_system(self):
        box = Box.parse("(0, 0, 10, 5, UTM)")
        assert box.ref_system == "UTM"

    def test_parse_negative_and_decimal(self):
        box = Box.parse("(-20.5, -35.0, 52.0, 38.25)")
        assert box.xmin == -20.5 and box.ymax == 38.25

    def test_str_roundtrip(self):
        box = Box(-1.5, 0.0, 2.0, 3.0, ref_system="UTM")
        assert Box.parse(str(box)) == box

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueRepresentationError):
            Box.parse("(1, 2, 3)")

    def test_validate_forms(self):
        assert Box.validate((0, 0, 1, 1)) == Box(0, 0, 1, 1)
        assert Box.validate("(0, 0, 1, 1)") == Box(0, 0, 1, 1)
        box = Box(0, 0, 1, 1)
        assert Box.validate(box) is box
        with pytest.raises(ValueRepresentationError):
            Box.validate(42)


class TestGeometry:
    def test_contains_point_boundaries(self):
        box = Box(0, 0, 2, 2)
        assert box.contains_point(0, 0)
        assert box.contains_point(2, 2)
        assert not box.contains_point(2.1, 1)

    def test_contains_box(self):
        outer = Box(0, 0, 10, 10)
        assert outer.contains(Box(1, 1, 9, 9))
        assert outer.contains(outer)
        assert not Box(1, 1, 9, 9).contains(outer)

    def test_overlap_cases(self):
        a = Box(0, 0, 2, 2)
        assert a.overlaps(Box(1, 1, 3, 3))
        assert a.overlaps(Box(2, 2, 3, 3))  # touching corner counts
        assert not a.overlaps(Box(3, 3, 4, 4))

    def test_intersection(self):
        a = Box(0, 0, 2, 2)
        assert a.intersection(Box(1, 1, 3, 3)) == Box(1, 1, 2, 2)
        assert a.intersection(Box(5, 5, 6, 6)) is None

    def test_union(self):
        assert Box(0, 0, 1, 1).union(Box(2, 2, 3, 3)) == Box(0, 0, 3, 3)

    def test_expanded(self):
        assert Box(1, 1, 2, 2).expanded(1) == Box(0, 0, 3, 3)
        with pytest.raises(SpatialError):
            Box(0, 0, 1, 1).expanded(-1)

    def test_ref_system_mismatch(self):
        a = Box(0, 0, 1, 1)
        b = Box(0, 0, 1, 1, ref_system="UTM")
        with pytest.raises(SpatialError):
            a.overlaps(b)
        with pytest.raises(SpatialError):
            a.union(b)
