"""Tests for spatial relations and the common() guard."""

from repro.spatial import Box, TopoRelation, common, common_box, mutual_overlap, relate


class TestRelate:
    def test_equal(self):
        assert relate(Box(0, 0, 1, 1), Box(0, 0, 1, 1)) is TopoRelation.EQUAL

    def test_disjoint(self):
        assert relate(Box(0, 0, 1, 1), Box(2, 2, 3, 3)) is TopoRelation.DISJOINT

    def test_meet(self):
        assert relate(Box(0, 0, 1, 1), Box(1, 0, 2, 1)) is TopoRelation.MEET

    def test_overlap(self):
        assert relate(Box(0, 0, 2, 2), Box(1, 1, 3, 3)) is TopoRelation.OVERLAP

    def test_covers_and_covered_by(self):
        outer, inner = Box(0, 0, 4, 4), Box(1, 1, 2, 2)
        assert relate(outer, inner) is TopoRelation.COVERS
        assert relate(inner, outer) is TopoRelation.COVERED_BY


class TestCommon:
    """The Figure-3 assertion: extents must be the same or overlap."""

    def test_empty_is_vacuous(self):
        assert common([])

    def test_single_extent(self):
        assert common([Box(0, 0, 1, 1)])

    def test_identical_extents(self):
        assert common([Box(0, 0, 1, 1)] * 3)

    def test_overlapping_extents(self):
        assert common([Box(0, 0, 2, 2), Box(1, 1, 3, 3), Box(1.5, 1.5, 4, 4)])

    def test_pairwise_overlap_without_shared_region_fails(self):
        # a-b overlap, b-c overlap, but no point common to all three.
        a = Box(0, 0, 2, 2)
        b = Box(1.5, 0, 3.5, 2)
        c = Box(3, 0, 5, 2)
        assert mutual_overlap([a, b]) and mutual_overlap([b, c])
        assert not common([a, b, c])

    def test_disjoint_fails(self):
        assert not common([Box(0, 0, 1, 1), Box(5, 5, 6, 6)])

    def test_common_box_value(self):
        got = common_box([Box(0, 0, 2, 2), Box(1, 1, 3, 3)])
        assert got == Box(1, 1, 2, 2)

    def test_common_box_none_when_empty_input(self):
        assert common_box([]) is None


class TestMutualOverlap:
    def test_all_pairs(self):
        boxes = [Box(0, 0, 3, 3), Box(1, 1, 4, 4), Box(2, 2, 5, 5)]
        assert mutual_overlap(boxes)

    def test_one_bad_pair(self):
        boxes = [Box(0, 0, 1, 1), Box(0.5, 0.5, 2, 2), Box(10, 10, 11, 11)]
        assert not mutual_overlap(boxes)
