"""Tests for the IDRISI-style file-based baseline (§4.1 shortcomings)."""

import numpy as np
import pytest

from repro.adt import Image
from repro.baseline import FileGIS
from repro.errors import GaeaError
from repro.gis import composite, unsuperclassify


def _img(value, size=4):
    return Image.from_array(np.full((size, size), float(value)), "float4")


@pytest.fixture()
def gis(tmp_path):
    g = FileGIS(workdir=tmp_path / "work")
    g.register_command("double", lambda img: Image.from_array(
        img.data.astype(float) * 2.0, "float4"))
    g.register_command(
        "cluster",
        lambda *bands_and_k: unsuperclassify(
            composite(list(bands_and_k[:-1])), int(bands_and_k[-1])
        ),
    )
    return g


class TestFileLayer:
    def test_write_read_roundtrip(self, gis):
        gis.write_raster("x", _img(3.0))
        back = gis.read_raster("x")
        assert np.allclose(back.data, 3.0)

    def test_missing_raster(self, gis):
        with pytest.raises(GaeaError):
            gis.read_raster("ghost")

    def test_list_rasters(self, gis):
        gis.write_raster("b", _img(1))
        gis.write_raster("a", _img(2))
        assert gis.list_rasters() == ["a", "b"]

    def test_silent_overwrite_shortcoming(self, gis):
        """§4.1 #1: a reused name silently destroys the old raster."""
        gis.write_raster("result", _img(1.0))
        gis.write_raster("result", _img(99.0))
        assert float(gis.read_raster("result").data[0, 0]) == 99.0

    def test_metadata_is_shape_only(self, gis):
        """§4.1 #2: the .doc sidecar records nothing about derivation."""
        gis.write_raster("x", _img(1.0))
        meta = gis.metadata_of("x")
        assert set(meta) == {"rows", "cols", "type"}


class TestCommands:
    def test_run_command(self, gis):
        gis.write_raster("in", _img(2.0))
        out = gis.run("double", ["in"], "out")
        assert float(out.data[0, 0]) == 4.0
        assert gis.exists("out")

    def test_unknown_command(self, gis):
        gis.write_raster("in", _img(1.0))
        with pytest.raises(GaeaError):
            gis.run("erode", ["in"], "out")

    def test_duplicate_command_rejected(self, gis):
        with pytest.raises(GaeaError):
            gis.register_command("double", lambda img: img)

    def test_transcript_records_command_lines(self, gis):
        gis.write_raster("in", _img(1.0))
        gis.run("double", ["in"], "out")
        assert gis.derivation_of("out") == "double in out"
        assert gis.derivation_of("in") is None


class TestReproducibility:
    def test_reproduce_with_transcript(self, gis):
        gis.write_raster("in", _img(2.0))
        gis.run("double", ["in"], "mid")
        gis.run("double", ["mid"], "out")
        reproduced = gis.reproduce("out")
        assert float(reproduced.data[0, 0]) == 8.0

    def test_reproduce_without_transcript_fails(self, gis, tmp_path):
        """§4.1 #2: a colleague with only the files cannot reproduce."""
        gis.write_raster("in", _img(2.0))
        gis.run("double", ["in"], "out")
        colleague = FileGIS(workdir=gis.workdir, keep_transcript=False)
        with pytest.raises(GaeaError):
            colleague.reproduce("out")

    def test_reproduce_with_parameters(self, gis, scene_generator):
        for band in ("red", "nir", "green"):
            gis.write_raster(band, scene_generator.band("africa", 1988, 7,
                                                        band))
        first = gis.run("cluster", ["red", "nir", "green"], "cover", 5)
        reproduced = gis.reproduce("cover")
        assert np.array_equal(first.data, reproduced.data)

    def test_no_abstraction_manual_repetition(self, gis):
        """§4.1 #4: applying the procedure to N data sets means N command
        sequences; the transcript grows linearly with no reuse."""
        for i in range(3):
            gis.write_raster(f"in{i}", _img(float(i)))
            gis.run("double", [f"in{i}"], f"out{i}")
        assert len(gis.transcript) == 3
