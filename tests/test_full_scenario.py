"""A complete global-change study, end to end.

The scenario the paper's introduction motivates, run as one test class:
two investigators study vegetation change and desertification in two
regions over three years, sharing one Gaea database.  Exercises every
layer together: GaeaQL DDL, base-data loading, concept-level queries that
trigger multi-step derivations, cross-scientist comparison through
provenance, experiment recording/reproduction, checkpointing, and the
WAL surviving a simulated crash.
"""

import numpy as np
import pytest

from repro.core import load_kernel, save_kernel
from repro.figures import AFRICA, build_figure2, build_figure5, populate_scenes
from repro.storage import StorageEngine
from repro.temporal import AbsTime


@pytest.fixture(scope="class")
def study():
    catalog = build_figure2()
    populate_scenes(catalog, seed=101, size=24, years=(1987, 1988, 1989))
    build_figure5(catalog)
    return catalog


class TestGlobalChangeStudy:
    def test_01_base_inventory(self, study):
        kernel = study.kernel
        assert kernel.store.count("landsat_tm_rectified") == 9  # 3y x 3 bands
        assert kernel.store.count("avhrr_scene") == 6
        assert kernel.store.count("rainfall_annual") == 3

    def test_02_vegetation_change_both_ways(self, study):
        """Investigator A derives PCA change, investigator B SPCA change;
        the concept query returns both and provenance tells them apart."""
        results = study.session.execute("SELECT FROM vegetation_change")
        by_class = {r.details["class"]: r.objects[0] for r in results}
        assert set(by_class) == {"veg_change_pca_c7", "veg_change_spca_c8"}
        kernel = study.kernel
        assert kernel.provenance.same_concept_different_derivation(
            by_class["veg_change_pca_c7"].oid,
            by_class["veg_change_spca_c8"].oid,
        )
        report = kernel.provenance.compare_derivations(
            by_class["veg_change_pca_c7"].oid,
            by_class["veg_change_spca_c8"].oid,
        )
        # Both consumed the same NDVI snapshots (shared base AVHRR).
        assert report["shared_base_inputs"]

    def test_03_ndvi_supply_reused(self, study):
        """Deriving C7 created NDVI snapshots; C8's derivation reused
        them rather than re-deriving (task count tells)."""
        p6_tasks = study.kernel.derivations.tasks.tasks_of_process("P6")
        # Two snapshots needed, derived exactly once each.
        assert len([t for t in p6_tasks if t.succeeded]) == 2

    def test_04_desert_definitions_disagree(self, study):
        results = study.session.execute("SELECT FROM hot_trade_wind_desert")
        fractions = {
            r.details["class"]: float(np.mean(r.objects[0]["data"].data != 0))
            for r in results
        }
        assert len(fractions) == 4
        assert fractions["desert_rain250_c2"] > fractions["desert_rain200_c3"]

    def test_05_land_change_compound(self, study):
        kernel = study.kernel
        scenes = kernel.store.objects("landsat_tm_rectified")
        early = [o for o in scenes if o["timestamp"].year == 1987]
        late = [o for o in scenes if o["timestamp"].year == 1989]
        result = kernel.derivations.execute_compound(
            "land-change-detection", {"tm_early": early, "tm_late": late}
        )
        lineage = kernel.provenance.lineage(result.output.oid)
        assert lineage.processes_used() == ["P20", "P20", "P21"]

    def test_06_experiment_recorded_and_reproduced(self, study):
        kernel = study.kernel
        experiment = kernel.experiments.begin(
            name="sahel-study-8789",
            investigator="qiu",
            concepts={"vegetation_change", "hot_trade_wind_desert"},
            parameters={"years": "1987-1989"},
        )
        for class_name in ("veg_change_pca_c7", "desert_rain250_c2"):
            obj = kernel.store.objects(class_name)[0]
            producer = kernel.derivations.tasks.producer_of(obj.oid)
            experiment.add_task(producer.task_id)
        reruns = kernel.experiments.reproduce(experiment.experiment_id)
        assert len(reruns) == 2
        assert all(not r.reused for r in reruns)

    def test_07_interpolated_mid_year(self, study):
        result = study.session.execute_one(
            "SELECT FROM ndvi_c6 WHERE timestamp = '1988-01-01'"
        )
        assert result.path == "interpolate"
        assert result.objects[0]["timestamp"] == AbsTime.from_ymd(1988, 1, 1)

    def test_08_checkpoint_roundtrip(self, study, tmp_path_factory):
        path = tmp_path_factory.mktemp("ckpt") / "study.ckpt"
        save_kernel(study.kernel, path)
        restored = load_kernel(path)
        assert len(restored.derivations.tasks) == \
            len(study.kernel.derivations.tasks)
        # Restored kernel still answers the concept query by retrieval.
        from repro.query.session import GaeaSession

        session = GaeaSession(kernel=restored)
        results = session.execute("SELECT FROM vegetation_change")
        assert all(r.path == "retrieve" for r in results)

    def test_09_wal_survives_crash(self, study):
        engine = study.kernel.engine
        recovered = StorageEngine.recover(engine.wal, study.kernel.types)
        for relation in engine.relations():
            live = sum(1 for _ in engine.scan(relation))
            replayed = sum(1 for _ in recovered.scan(relation))
            assert live == replayed, relation

    def test_10_task_log_is_the_audit_trail(self, study):
        """Every derived object in the database has a producing task; no
        orphan derivations exist (the §1 sharing guarantee)."""
        kernel = study.kernel
        for cls in kernel.classes.derived_classes():
            for obj in kernel.store.objects(cls.name):
                producer = kernel.derivations.tasks.producer_of(obj.oid)
                assert producer is not None, (cls.name, obj.oid)
