"""Tests for the physical operator tree (scan-once fallbacks, EXPLAIN
trees, covering index-only scans, projection)."""

import numpy as np
import pytest

import repro
from repro.adt import Image
from repro.core import NonPrimitiveClass
from repro.errors import PlanningError, UnderivableError
from repro.query import render_tree
from repro.query.operators import FallbackSwitch, HeapScan
from repro.query.physical import PhysicalPlanner
from repro.spatial import Box
from repro.temporal import AbsTime

UNIVERSE = Box(0.0, 0.0, 100.0, 100.0)

DDL = """
DEFINE CLASS field (
  ATTRIBUTES: data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
);
DEFINE CLASS mask (
  ATTRIBUTES: data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: maskify
);
DEFINE PROCESS maskify
OUTPUT mask
ARGUMENT ( field src )
TEMPLATE {
  MAPPINGS:
    mask.data = img_threshold(src.data, 0.5);
    mask.spatialextent = src.spatialextent;
    mask.timestamp = src.timestamp;
}
"""


@pytest.fixture()
def conn():
    connection = repro.connect(universe=UNIVERSE)
    connection.cursor().execute(DDL)
    return connection


def _field(conn, day=0, x=0.0, value=1.0, size=4):
    return conn.kernel.store.store("field", {
        "data": Image.from_array(np.full((size, size), value), "float4"),
        "spatialextent": Box(x, 0.0, x + 10.0, 10.0),
        "timestamp": AbsTime(day),
    })


@pytest.fixture()
def scan_counter(conn):
    """Enable the store's scan log and report per-signature counts."""
    store = conn.kernel.store
    store.scan_log = []

    def scans_of(class_name, **extents):
        spatial = extents.get("spatial")
        temporal = extents.get("temporal")
        return [
            event for event in store.scan_log
            if event[0] == class_name
            and ("spatial" not in extents or event[1] == spatial)
            and ("temporal" not in extents or event[2] == temporal)
        ]

    return scans_of


class TestScanOnceFallbacks:
    """The ROADMAP re-scan item: fallback retrievals used to run the
    stored scan 2–4× (iter_find → exists → planner re-find) before
    falling back; the FallbackSwitch threads the emptiness through."""

    def test_derive_fallback_scans_target_exactly_once(self, conn,
                                                       scan_counter):
        _field(conn, day=3)
        kernel = conn.kernel
        fired_after_scans = []
        original = kernel.derivations.execute_process

        def traced(name, bindings):
            if not fired_after_scans:
                fired_after_scans.append(len(scan_counter("mask")))
            return original(name, bindings)

        kernel.derivations.execute_process = traced
        rows = conn.cursor().execute("SELECT FROM mask").fetchall()
        assert len(rows) == 1
        # Exactly one stored-data scan of the target class before the
        # first derivation firing...
        assert fired_after_scans == [1]
        # ... and none after it either: the §2.1.5 answer is collected
        # from the fired task outputs, not re-read from the relation.
        assert len(scan_counter("mask")) == 1

    def test_interpolate_fallback_scans_query_signature_once(
            self, conn, scan_counter):
        _field(conn, day=0, value=0.0)
        _field(conn, day=10, value=10.0)
        cur = conn.cursor()
        rows = cur.execute("SELECT FROM field WHERE timestamp = ?",
                           [AbsTime(4)]).fetchall()
        assert len(rows) == 1
        assert np.allclose(rows[0]["data"].data, 4.0, atol=1e-5)
        # One scan at the query's own timestamp; the bracketing probes
        # target other timestamps and are inherent to interpolation.
        assert len(scan_counter("field", temporal=AbsTime(4))) == 1

    def test_stored_retrieval_needs_single_scan(self, conn, scan_counter):
        _field(conn, day=1)
        rows = conn.cursor().execute("SELECT FROM field").fetchall()
        assert len(rows) == 1
        assert len(scan_counter("field")) == 1

    def test_rejecting_predicates_do_not_trigger_fallback(self, conn):
        """Stored data at the extents + unsatisfied attribute predicate
        = empty answer, never a derivation."""
        cur = conn.cursor()
        cur.execute("""
        DEFINE CLASS sample (
          ATTRIBUTES: code = int4;
          SPATIAL EXTENT: cell = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
        """)
        conn.kernel.store.store("sample", {
            "code": 1, "cell": Box(0, 0, 1, 1), "timestamp": AbsTime(0),
        })
        rows = cur.execute("SELECT FROM sample WHERE code = 99").fetchall()
        assert rows == []

    def test_underivable_error_names_fallback_failures(self, conn):
        with pytest.raises(UnderivableError, match="mask"):
            conn.cursor().execute("SELECT FROM mask").fetchall()


class TestOperatorTrees:
    def test_explain_renders_fallback_switch_tree(self, conn):
        _field(conn)
        dump = conn.cursor().explain("SELECT FROM mask")
        assert "FallbackSwitch(mask)" in dump
        assert "HeapScan(cls_mask)" in dump
        assert "Derive(mask)" in dump
        assert "cost~" in dump and "rows~" in dump

    def test_explain_derive_renders_tree(self, conn):
        _field(conn)
        dump = conn.cursor().explain("EXPLAIN DERIVE mask")
        assert "path=derive" in dump
        assert "Derive(mask)" in dump

    def test_explain_statement_result_carries_tree(self, conn):
        _field(conn)
        [result] = conn.cursor().execute("EXPLAIN SELECT FROM field").results
        assert result.kind == "explanation"
        assert result.details["paths"]["field"] == "retrieve"
        assert "FallbackSwitch(field)" in result.details["tree"]
        assert "FallbackSwitch(field)" in result.message

    def test_explain_run_renders_run_operator(self, conn):
        obj = _field(conn)
        cur = conn.cursor()
        [result] = cur.execute(
            f"EXPLAIN RUN maskify WITH src = ({obj.oid})"
        ).results
        assert f"Run(maskify WITH src=({obj.oid}))" in result.message
        # EXPLAIN did not execute the process.
        assert conn.kernel.store.count("mask") == 0

    def test_run_statement_still_executes(self, conn):
        obj = _field(conn)
        [result] = conn.cursor().run(
            f"RUN maskify WITH src = ({obj.oid})"
        )[:1]
        assert result.path == "run"
        assert result.details["task_id"]
        assert conn.kernel.store.count("mask") == 1

    def test_render_tree_shape(self, conn):
        _field(conn)
        planner = PhysicalPlanner(kernel=conn.kernel)
        plan = conn.optimizer.compile("SELECT FROM field")
        tree = planner.build_retrieve(plan.nodes[0])
        assert isinstance(tree, FallbackSwitch)
        assert isinstance(tree.children[0], HeapScan)
        lines = render_tree(tree)
        assert lines[0].startswith("FallbackSwitch(field)")
        assert any(line.lstrip().startswith("├─") or
                   line.lstrip().startswith("└─") for line in lines[1:])

    def test_derive_statement_result_shape(self, conn):
        _field(conn, day=3)
        [result] = conn.cursor().run("DERIVE mask")
        assert result.path == "derive"
        assert result.details["plan_steps"] == ["maskify"]


class TestProjection:
    @pytest.fixture()
    def site_conn(self):
        connection = repro.connect(universe=UNIVERSE)
        cur = connection.cursor()
        cur.execute("""
        DEFINE CLASS site (
          ATTRIBUTES: code = int4; reading = float8; name = char16;
          SPATIAL EXTENT: cell = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
        """)
        stamp = AbsTime.from_ymd(1990, 6, 1)
        for i in range(60):
            connection.kernel.store.store("site", {
                "code": i % 6, "reading": float(i), "name": f"s{i}",
                "cell": Box(i % 10, i % 10, i % 10 + 1, i % 10 + 1),
                "timestamp": stamp,
            })
        return connection

    def test_projected_rows_are_dicts(self, site_conn):
        cur = site_conn.cursor()
        rows = cur.execute("SELECT name, code FROM site WHERE code = 3"
                           ).fetchall()
        assert len(rows) == 10
        assert all(set(row) == {"name", "code"} for row in rows)
        assert all(row["code"] == 3 for row in rows)

    def test_description_reflects_projection(self, site_conn):
        cur = site_conn.cursor()
        cur.execute("SELECT name, code FROM site")
        assert [entry[0] for entry in cur.description] == ["name", "code"]

    def test_unknown_projection_attribute_rejected(self, site_conn):
        with pytest.raises(PlanningError):
            site_conn.cursor().execute("SELECT ghost FROM site")


class TestIndexOnlyScans:
    @pytest.fixture()
    def indexed_conn(self):
        connection = repro.connect(universe=UNIVERSE)
        cur = connection.cursor()
        cur.execute("""
        DEFINE CLASS site (
          ATTRIBUTES: code = int4; reading = float8; name = char16;
          SPATIAL EXTENT: cell = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
        """)
        stamp = AbsTime.from_ymd(1990, 6, 1)
        for i in range(60):
            connection.kernel.store.store("site", {
                "code": i % 6, "reading": float(i), "name": f"s{i}",
                "cell": Box(i % 10, i % 10, i % 10 + 1, i % 10 + 1),
                "timestamp": stamp,
            })
        cur.execute("CREATE INDEX ON site (code)")
        return connection

    def test_covering_projection_plans_index_only(self, indexed_conn):
        cur = indexed_conn.cursor()
        dump = cur.explain("SELECT code FROM site WHERE code = 3")
        assert "index-only" in dump
        assert "IndexOnlyScan(cls_site.code)" in dump

    def test_non_covering_projection_fetches_heap(self, indexed_conn):
        cur = indexed_conn.cursor()
        dump = cur.explain("SELECT name, code FROM site WHERE code = 3")
        assert "index-only" not in dump
        assert "IndexScan(cls_site.code)" in dump

    def test_index_only_rows_skip_heap_values(self, indexed_conn):
        """The covering scan never materializes row value dicts."""
        engine = indexed_conn.kernel.store.engine
        calls = []
        original = engine.fetch

        def counting_fetch(relation, tid, snapshot=None):
            calls.append(tid)
            return original(relation, tid, snapshot)

        engine.fetch = counting_fetch
        rows = indexed_conn.cursor().execute(
            "SELECT code FROM site WHERE code = 3"
        ).fetchall()
        assert rows == [{"code": 3}] * 10
        assert calls == []

    def test_index_only_range_scan(self, indexed_conn):
        cur = indexed_conn.cursor()
        dump = cur.explain(
            "SELECT code FROM site WHERE code >= 4 AND code <= 5"
        )
        assert "index-only" in dump
        rows = cur.execute(
            "SELECT code FROM site WHERE code >= 4 AND code <= 5"
        ).fetchall()
        assert sorted({row["code"] for row in rows}) == [4, 5]
        assert len(rows) == 20

    def test_extent_predicate_disables_index_only(self, indexed_conn):
        cur = indexed_conn.cursor()
        dump = cur.explain(
            "SELECT code FROM site WHERE code = 3 AND timestamp = "
            "'1990-06-01'"
        )
        assert "index-only" not in dump

    def test_index_only_cheaper_than_heap_fetch(self, indexed_conn):
        store = indexed_conn.kernel.store
        covering = store.choose_path("site", filters=(("code", 3),),
                                     projection=("code",))
        fetching = store.choose_path("site", filters=(("code", 3),))
        assert covering.index_only and not fetching.index_only
        assert covering.cost < fetching.cost
