"""Vectorized batch-at-a-time execution: regressions and contracts.

The operator tree runs in two modes — scalar (row-at-a-time Volcano)
and vectorized (NumPy columnar :class:`~repro.query.batch.Batch`
slabs).  These tests pin the contracts the batch path must keep:

* empty inputs and empty post-filter batches stream cleanly;
* LIMIT/OFFSET land exactly on batch boundaries;
* EXPLAIN annotates every operator ``vectorized``/``scalar``;
* joins and non-vectorizable stages cross an explicit
  :class:`~repro.query.operators.ScalarAdapter` boundary;
* a mixed vectorized/scalar plan stays snapshot-consistent under a
  concurrent writer;
* the IndexNestedLoopJoin probe side runs the §2.1.5
  interpolate/derive fallback on a probe miss;
* LIMIT/OFFSET accept bind parameters, so one cached plan serves every
  page of a paginated fetch.
"""

import threading

import numpy as np
import pytest

import repro
from repro.adt import Image
from repro.errors import BindError
from repro.query import render_tree
from repro.query.ast import ColumnRef
from repro.query.batch import Batch, scalar_execution
from repro.query.operators import (
    IndexNestedLoopJoin,
    PhysicalOperator,
    ScalarAdapter,
)
from repro.query.physical import PhysicalPlanner
from repro.spatial import Box
from repro.temporal import AbsTime

UNIVERSE = Box(0.0, 0.0, 100.0, 100.0)

DDL = """
DEFINE CLASS reading (
  ATTRIBUTES: station = int4; value = float8; tag = char16;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""

STAMP = AbsTime.from_ymd(1990, 6, 1)


def _load(conn, n, *, nulls=False):
    store = conn.kernel.store
    for i in range(n):
        store.store("reading", {
            "station": i % 7,
            "value": None if nulls and i % 5 == 0 else i * 0.5,
            "tag": f"t{i % 3}",
            "cell": Box(float(i % 9), 0.0, float(i % 9) + 1.0, 1.0),
            "timestamp": STAMP,
        })


@pytest.fixture()
def conn():
    connection = repro.connect(universe=UNIVERSE)
    connection.cursor().execute(DDL)
    return connection


def _rows(cur, query, params=None):
    cur.execute(query, params)
    return cur.fetchall()


class TestEmptyInputs:
    def test_empty_class_fails_identically_in_both_modes(self, conn):
        # An empty base class triggers the §2.1.5 fallback chain, which
        # ends in UnderivableError — in both execution modes.
        from repro.errors import UnderivableError
        cur = conn.cursor()
        query = "SELECT station FROM reading ORDER BY station"
        with pytest.raises(UnderivableError):
            _rows(cur, query)
        with scalar_execution():
            with pytest.raises(UnderivableError):
                _rows(cur, query)

    def test_filter_matching_nothing(self, conn):
        _load(conn, 40)
        cur = conn.cursor()
        assert _rows(cur, "SELECT station FROM reading "
                          "WHERE tag = 'absent' ORDER BY station") == []

    def test_aggregate_over_empty_input(self, conn):
        _load(conn, 40)
        cur = conn.cursor()
        vec = _rows(cur, "SELECT count(*), sum(station), avg(value) "
                         "FROM reading WHERE tag = 'absent'")
        with scalar_execution():
            sca = _rows(cur, "SELECT count(*), sum(station), avg(value) "
                             "FROM reading WHERE tag = 'absent'")
        assert vec == sca
        (row,) = vec
        assert row["count(*)"] == 0
        assert row["sum(station)"] is None


class TestBatchBoundaries:
    """Tiny batch sizes force every boundary case through the slab
    slicing in Limit/Sort/HashAggregate."""

    @pytest.mark.parametrize("limit,offset", [
        (4, 0), (4, 4), (8, 0), (3, 7), (0, 0), (12, 2), (100, 0),
    ])
    def test_limit_offset_across_batch_edges(self, conn, limit, offset):
        _load(conn, 12)
        planner = PhysicalPlanner(kernel=conn.kernel, vectorize=True,
                                  batch_size=4)
        from repro.query.parser import parse
        from repro.query.optimizer import Optimizer
        optimizer = Optimizer(conn.kernel)
        source = (f"SELECT station FROM reading ORDER BY oid "
                  f"LIMIT {limit} OFFSET {offset}")
        (node,) = optimizer.plan(parse(source)[0])
        tree = planner.build(node)
        got = [row["station"] for row in tree.run()]
        expect = [i % 7 for i in range(12)][offset:offset + limit]
        assert got == expect

    def test_batch_sized_exactly_at_limit(self, conn):
        _load(conn, 8)
        planner = PhysicalPlanner(kernel=conn.kernel, vectorize=True,
                                  batch_size=8)
        from repro.query.parser import parse
        from repro.query.optimizer import Optimizer
        optimizer = Optimizer(conn.kernel)
        (node,) = optimizer.plan(
            parse("SELECT station FROM reading ORDER BY oid LIMIT 8")[0]
        )
        got = list(planner.build(node).run())
        assert len(got) == 8


class TestExplainAnnotations:
    def test_every_operator_carries_a_mode(self, conn):
        _load(conn, 10)
        cur = conn.cursor()
        plan = cur.explain("SELECT tag, count(*) FROM reading "
                           "WHERE station >= 2 GROUP BY tag "
                           "ORDER BY tag LIMIT 2")
        operator_lines = [line for line in plan.splitlines()
                          if "[rows~" in line]
        assert operator_lines
        for line in operator_lines:
            assert "[vectorized batch=" in line or "[scalar]" in line, line

    def test_vectorized_spine_scalar_fallback(self, conn):
        _load(conn, 10)
        cur = conn.cursor()
        plan = cur.explain("SELECT station FROM reading WHERE tag = 't1'")
        assert "Filter(tag='t1') [" in plan
        assert "[vectorized batch=" in plan
        # the §2.1.5 derive fallback stays a scalar operator
        assert "[scalar]" in plan

    def test_join_inputs_cross_scalar_adapter(self, conn):
        _load(conn, 10)
        cur = conn.cursor()
        cur.execute("DEFINE CLASS station_info "
                    "( ATTRIBUTES: sid = int4; label = char16; )")
        conn.kernel.store.store("station_info", {"sid": 1, "label": "a"})
        plan = cur.explain("SELECT count(*) FROM reading "
                           "JOIN station_info "
                           "ON reading.station = station_info.sid")
        assert "ScalarAdapter" in plan

    def test_scalar_mode_plans_report_scalar(self, conn):
        _load(conn, 10)
        cur = conn.cursor()
        with scalar_execution():
            plan = cur.explain("SELECT station FROM reading "
                               "ORDER BY station LIMIT 3")
        assert "[vectorized" not in plan


class TestMixedPlanUnderConcurrentWriter:
    def test_vectorized_reads_stay_snapshot_consistent(self, conn):
        """Each fetch sees a committed prefix: count(*) equals the
        number of distinct stations summed, never a torn batch."""
        _load(conn, 14)  # two full stations to start
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer():
            store = conn.kernel.store
            try:
                for i in range(300):
                    if stop.is_set():
                        return
                    store.store("reading", {
                        "station": i % 7, "value": 1.0, "tag": "w",
                        "cell": Box(0.0, 0.0, 1.0, 1.0),
                        "timestamp": STAMP,
                    })
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            cur = conn.cursor()
            for _ in range(40):
                cur.execute("SELECT count(*) FROM reading")
                (total_row,) = cur.fetchall()
                cur.execute("SELECT tag, count(*) FROM reading "
                            "GROUP BY tag ORDER BY tag")
                grouped = cur.fetchall()
                # Monotonic prefix: both aggregates ran under their own
                # snapshot, so each is internally consistent.
                assert total_row["count(*)"] >= 14
                assert sum(r["count(*)"] for r in grouped) >= 14
        finally:
            stop.set()
            thread.join()
        assert not errors


class _RowSource(PhysicalOperator):
    """A fixed scalar row source for driving join operators directly."""

    def __init__(self, rows):
        self._rows = rows
        self.estimated_rows = float(len(rows))
        self.estimated_cost = float(len(rows))

    def label(self) -> str:
        return f"RowSource({len(self._rows)})"

    def run(self):
        for row in self._rows:
            self.rows_out += 1
            yield row


class TestProbeSideFallback:
    DERIVED_DDL = """
    DEFINE CLASS summary (
      ATTRIBUTES: station = int4; data = image;
      SPATIAL EXTENT: cell = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: summarize
    )
    DEFINE PROCESS summarize
    OUTPUT summary
    ARGUMENT ( source src )
    TEMPLATE {
      MAPPINGS:
        summary.station = src.station;
        summary.data = img_threshold(src.data, 0.5);
        summary.cell = src.cell;
        summary.timestamp = src.timestamp;
    }
    """

    @pytest.fixture()
    def derived_conn(self):
        connection = repro.connect(universe=UNIVERSE)
        cur = connection.cursor()
        cur.execute("DEFINE CLASS source ( ATTRIBUTES: station = int4; "
                    "data = image; SPATIAL EXTENT: cell = box; "
                    "TEMPORAL EXTENT: timestamp = abstime; )")
        cur.execute(self.DERIVED_DDL)
        connection.kernel.store.store("source", {
            "station": 3,
            "data": Image.from_array(np.full((4, 4), 0.9), "float4"),
            "cell": Box(0.0, 0.0, 10.0, 10.0),
            "timestamp": STAMP,
        })
        cur.execute("CREATE INDEX ON summary (station)")
        return connection

    def test_probe_miss_triggers_derivation(self, derived_conn):
        planner = PhysicalPlanner(kernel=derived_conn.kernel)
        ctx = planner.context()
        left = _RowSource([{"station": 3}, {"station": 3}, {"station": 8}])
        join = IndexNestedLoopJoin(
            ctx, left,
            ColumnRef(attr="station"), "summary",
            ColumnRef(attr="station"), "left", "summary",
        )
        rows = list(join.run())
        # the one derived summary object matches both station=3 rows;
        # station=8 finds nothing even after the fallback
        assert len(rows) == 2
        assert join.probe_fallback == "derive"
        for row in rows:
            assert row.resolve("summary", "station") == 3

    def test_fallback_attempted_once(self, derived_conn):
        planner = PhysicalPlanner(kernel=derived_conn.kernel)
        ctx = planner.context()
        calls = []
        real_derive = derived_conn.kernel.planner.derive

        def counting_derive(*args, **kwargs):
            calls.append(args)
            return real_derive(*args, **kwargs)

        derived_conn.kernel.planner.derive = counting_derive
        try:
            left = _RowSource([{"station": 9}, {"station": 10},
                               {"station": 11}])
            join = IndexNestedLoopJoin(
                ctx, left,
                ColumnRef(attr="station"), "summary",
                ColumnRef(attr="station"), "left", "summary",
            )
            assert list(join.run()) == []
        finally:
            derived_conn.kernel.planner.derive = real_derive
        assert len(calls) == 1


class TestBindableLimitOffset:
    def test_paginated_fetch_reuses_one_plan(self, conn):
        _load(conn, 20)
        cur = conn.cursor()
        pages = []
        for offset in (0, 5, 10, 15):
            cur.execute("SELECT station FROM reading ORDER BY oid "
                        "LIMIT ? OFFSET ?", (5, offset))
            pages.append([row["station"] for row in cur.fetchall()])
        assert sum(pages, []) == [i % 7 for i in range(20)]

    def test_named_parameters(self, conn):
        _load(conn, 10)
        cur = conn.cursor()
        cur.execute("SELECT station FROM reading ORDER BY oid "
                    "LIMIT :n OFFSET :skip", {"n": 3, "skip": 2})
        assert [row["station"] for row in cur.fetchall()] == [2, 3, 4]

    def test_limit_parameter_must_be_bound(self, conn):
        _load(conn, 5)
        cur = conn.cursor()
        with pytest.raises(BindError):
            cur.execute("SELECT station FROM reading LIMIT ?")

    @pytest.mark.parametrize("value", [-1, 2.5, "three", True, None])
    def test_limit_parameter_validated(self, conn, value):
        _load(conn, 5)
        cur = conn.cursor()
        with pytest.raises(BindError):
            cur.execute("SELECT station FROM reading LIMIT ?", (value,))

    def test_zero_limit_parameter(self, conn):
        _load(conn, 5)
        cur = conn.cursor()
        cur.execute("SELECT station FROM reading LIMIT ?", (0,))
        assert cur.fetchall() == []
