"""Concept-query planning: cost-ordered member unions, shared probes,
mixed indexed/unindexed members, plan-cache invalidation on revision."""

import numpy as np
import pytest

import repro
from repro.adt import Image
from repro.query.operators import ConceptUnion
from repro.query.physical import ConceptGroup, PhysicalPlanner, group_nodes
from repro.spatial import Box
from repro.temporal import AbsTime

UNIVERSE = Box(0.0, 0.0, 100.0, 100.0)

DDL = """
DEFINE CLASS readings_a (
  ATTRIBUTES: code = int4; name = char16;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
);
DEFINE CLASS readings_b (
  ATTRIBUTES: code = int4; name = char16;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
);
DEFINE CONCEPT readings MEMBERS readings_a, readings_b
"""


@pytest.fixture()
def conn():
    connection = repro.connect(universe=UNIVERSE)
    connection.cursor().execute(DDL)
    stamp = AbsTime.from_ymd(1990, 6, 1)
    store = connection.kernel.store
    for i in range(50):
        store.store("readings_a", {
            "code": i % 5, "name": f"a{i}",
            "cell": Box(i % 10, 0, i % 10 + 1, 1), "timestamp": stamp,
        })
    for i in range(40):
        store.store("readings_b", {
            "code": i % 5, "name": f"b{i}",
            "cell": Box(i % 10, 2, i % 10 + 1, 3), "timestamp": stamp,
        })
    return connection


class TestConceptUnionPlanning:
    def test_member_nodes_group_into_one_union(self, conn):
        plan = conn.optimizer.compile("SELECT FROM readings")
        grouped = group_nodes(plan.nodes)
        assert len(grouped) == 1
        assert isinstance(grouped[0], ConceptGroup)
        assert grouped[0].concept == "readings"
        assert len(grouped[0].members) == 2

    def test_two_selects_on_one_concept_stay_two_groups(self, conn):
        plan = conn.optimizer.compile(
            "SELECT FROM readings; SELECT FROM readings"
        )
        grouped = group_nodes(plan.nodes)
        assert len(grouped) == 2
        rows = conn.cursor().execute(
            "SELECT FROM readings; SELECT FROM readings"
        ).fetchall()
        assert len(rows) == 2 * 90

    def test_members_ordered_by_estimated_cost(self, conn):
        """The smaller member (readings_b, 40 rows) probes first even
        though it sorts after readings_a alphabetically."""
        plan = conn.optimizer.compile("SELECT FROM readings")
        [group] = group_nodes(plan.nodes)
        union = PhysicalPlanner(kernel=conn.kernel).build_group(group)
        assert isinstance(union, ConceptUnion)
        costs = [member.estimated_cost for member in union.members]
        assert costs == sorted(costs)
        first = conn.cursor().execute("SELECT FROM readings").fetchone()
        assert first.class_name == "readings_b"

    def test_union_streams_all_members(self, conn):
        rows = conn.cursor().execute("SELECT FROM readings").fetchall()
        assert len(rows) == 90
        assert {obj.class_name for obj in rows} \
            == {"readings_a", "readings_b"}

    def test_mixed_indexed_and_unindexed_members(self, conn):
        """An index on one member reorders and prices only that member;
        results stay identical."""
        cur = conn.cursor()
        query = "SELECT FROM readings WHERE code = 3"
        before = sorted(obj["name"] for obj in cur.execute(query).fetchall())
        cur.execute("CREATE INDEX ON readings_a (code)")
        dump = cur.explain(query)
        assert "index-eq(code=3)" in dump      # readings_a rides the B-tree
        assert "full-scan" in dump             # readings_b still scans
        after = sorted(obj["name"] for obj in cur.execute(query).fetchall())
        assert after == before
        assert len(after) == 18
        # The indexed probe (~10 rows through the B-tree) is now priced
        # below readings_b's 40-row scan and streams first.
        first = cur.execute(query).fetchone()
        assert first.class_name == "readings_a"

    def test_explain_shows_concept_union_tree(self, conn):
        dump = conn.cursor().explain("SELECT FROM readings")
        assert "ConceptUnion(readings: 2 members)" in dump
        assert "via concept readings" in dump
        assert dump.count("FallbackSwitch") == 2


class TestConceptPlanCache:
    def test_concept_revision_invalidates_cached_plan(self, conn):
        cur = conn.cursor()
        query = "SELECT FROM readings"
        cur.execute(query).fetchall()
        cur.execute(query).fetchall()  # cache hit
        assert conn.cache_hits >= 1
        invalidations = conn.plan_cache.invalidations
        # Mutating the concept (new member) bumps the revision that is
        # folded into the schema version guarding cache entries.
        cur.execute("""
        DEFINE CLASS readings_c (
          ATTRIBUTES: code = int4; name = char16;
          SPATIAL EXTENT: cell = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
        """)
        conn.kernel.concepts.attach_class("readings", "readings_c")
        conn.kernel.store.store("readings_c", {
            "code": 0, "name": "c0",
            "cell": Box(0, 4, 1, 5), "timestamp": AbsTime.from_ymd(1990, 6, 1),
        })
        rows = cur.execute(query).fetchall()
        assert conn.plan_cache.invalidations == invalidations + 1
        assert len(rows) == 91  # the new member's row is unioned in
        plan = conn.optimizer.compile(query)
        assert len(plan.nodes) == 3

    def test_isa_edge_invalidates_cached_plan(self, conn):
        cur = conn.cursor()
        cur.execute("DEFINE CONCEPT all_readings")
        query = "SELECT FROM readings"
        cur.execute(query).fetchall()
        invalidations = conn.plan_cache.invalidations
        conn.kernel.concepts.add_isa("readings", "all_readings")
        cur.execute(query).fetchall()
        assert conn.plan_cache.invalidations == invalidations + 1


class TestSharedDerivationProbes:
    def test_union_members_share_marking_probes(self):
        """Two derivable members falling back under one union share the
        backward-planning supply probes of their common input class."""
        connection = repro.connect(universe=UNIVERSE)
        cur = connection.cursor()
        cur.execute("""
        DEFINE CLASS field (
          ATTRIBUTES: data = image;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
        );
        DEFINE CLASS mask_lo (
          ATTRIBUTES: data = image;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
          DERIVED BY: maskify_lo
        );
        DEFINE CLASS mask_hi (
          ATTRIBUTES: data = image;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
          DERIVED BY: maskify_hi
        );
        DEFINE PROCESS maskify_lo
        OUTPUT mask_lo
        ARGUMENT ( field src )
        TEMPLATE {
          MAPPINGS:
            mask_lo.data = img_threshold(src.data, 0.25);
            mask_lo.spatialextent = src.spatialextent;
            mask_lo.timestamp = src.timestamp;
        };
        DEFINE PROCESS maskify_hi
        OUTPUT mask_hi
        ARGUMENT ( field src )
        TEMPLATE {
          MAPPINGS:
            mask_hi.data = img_threshold(src.data, 0.75);
            mask_hi.spatialextent = src.spatialextent;
            mask_hi.timestamp = src.timestamp;
        };
        DEFINE CONCEPT masks MEMBERS mask_lo, mask_hi
        """)
        connection.kernel.store.store("field", {
            "data": Image.from_array(np.full((4, 4), 0.5), "float4"),
            "spatialextent": Box(0, 0, 10, 10),
            "timestamp": AbsTime(0),
        })
        store = connection.kernel.store
        store.scan_log = []
        rows = cur.execute("SELECT FROM masks").fetchall()
        assert {obj.class_name for obj in rows} == {"mask_lo", "mask_hi"}

    def test_marking_cache_dedupes_supply_probes(self, conn):
        """A warm marking cache answers a second backward-planning
        marking without touching the store (the sharing a concept
        union's execution context provides to its Derive operators)."""
        planner = conn.kernel.planner
        store = conn.kernel.store
        cache = {}
        store.scan_log = []
        first = planner._query_marking(None, None, cache=cache)
        cold_scans = len(store.scan_log)
        assert cold_scans > 0
        second = planner._query_marking(None, None, cache=cache)
        assert second == first
        assert len(store.scan_log) == cold_scans  # zero new scans
