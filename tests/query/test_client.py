"""Tests for the v2 client API: connect/Connection/Cursor, prepared
statements with parameter binding, the plan cache, streaming fetches,
and transactions."""

import pytest

from repro import connect, open_session
from repro.errors import (
    BindError,
    GaeaError,
    InterfaceError,
    ParseError,
    ResultCardinalityError,
    TransactionError,
)
from repro.figures import AFRICA
from repro.gis import SceneGenerator
from repro.spatial import Box
from repro.temporal import AbsTime


DDL = """
DEFINE CLASS landsat_tm (
  ATTRIBUTES: area = char16; band = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS land_cover (
  ATTRIBUTES: area = char16; numclass = int4; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20
OUTPUT land_cover
ARGUMENT ( SETOF landsat_tm bands >= 3 )
TEMPLATE {
  ASSERTIONS:
    card(bands) = 3;
    common(bands.spatialextent);
    common(bands.timestamp);
  MAPPINGS:
    land_cover.data = unsuperclassify(composite(bands), 12);
    land_cover.numclass = 12;
    land_cover.area = ANYOF bands.area;
    land_cover.spatialextent = ANYOF bands.spatialextent;
    land_cover.timestamp = ANYOF bands.timestamp;
}
"""


@pytest.fixture()
def conn():
    connection = connect(universe=AFRICA)
    connection.cursor().run(DDL)
    generator = SceneGenerator(seed=4, nrow=16, ncol=16)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(("red", "nir", "green"),
                           generator.scene("africa", 1986, 1)):
        connection.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    return connection


class TestCursorBasics:
    def test_execute_ddl_collects_messages(self, conn):
        cur = conn.cursor()
        cur.execute("DEFINE CONCEPT cover MEMBERS land_cover")
        assert any("cover" in r.message for r in cur.results)

    def test_fetchone_streams_objects(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm")
        first = cur.fetchone()
        assert first.class_name == "landsat_tm"
        assert cur.rowcount == -1  # stream still open
        rest = cur.fetchall()
        assert len(rest) == 2
        assert cur.rowcount == 3
        assert cur.fetchone() is None

    def test_fetchmany_and_iteration(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm")
        assert len(cur.fetchmany(2)) == 2
        assert len(list(cur)) == 1

    def test_description_from_class_schema(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm")
        names = [column[0] for column in cur.description]
        assert "band" in names and "spatialextent" in names

    def test_statements_after_retrieval_run_on_drain(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm; SHOW CLASSES")
        assert cur.results == []  # SHOW not reached yet
        cur.fetchall()
        assert any("CLASS landsat_tm" in r.message for r in cur.results)

    def test_closed_cursor_and_connection_reject_use(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(InterfaceError):
            cur.execute("SHOW CLASSES")
        conn.close()
        with pytest.raises(InterfaceError):
            conn.cursor()

    def test_run_preserves_statement_order(self, conn):
        results = conn.cursor().run("SHOW CLASSES; SELECT FROM landsat_tm")
        assert [r.kind for r in results] == ["message", "objects"]


class TestParameterBinding:
    def test_positional_rebinding_cached_plan(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        cur = conn.cursor()
        for band in ("red", "nir", "green"):
            cur.execute(query, [band])
            [obj] = cur.fetchall()
            assert obj["band"] == band
        assert conn.cache_hits >= 3

    def test_named_parameters(self, conn):
        cur = conn.cursor()
        cur.execute(
            "SELECT FROM landsat_tm WHERE band = :band AND area = :area",
            {"band": "nir", "area": "africa"},
        )
        assert len(cur.fetchall()) == 1

    def test_timestamp_parameter_accepts_string_and_abstime(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE timestamp = ?")
        cur = conn.cursor()
        cur.execute(query, ["1986-01-15"])
        assert len(cur.fetchall()) == 3
        cur.execute(query, [AbsTime.from_ymd(1986, 1, 15)])
        assert len(cur.fetchall()) == 3

    def test_box_coordinate_and_whole_box_parameters(self, conn):
        cur = conn.cursor()
        cur.execute(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS "
            "(?, ?, 52, 38)", [-20.0, -35.0],
        )
        assert len(cur.fetchall()) == 3
        cur.execute(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS ?",
            [Box(-20.0, -35.0, 52.0, 38.0)],
        )
        assert len(cur.fetchall()) == 3

    def test_derive_with_parameters(self, conn):
        result = conn.execute("DERIVE land_cover AT ?", ["1986-01-15"])
        assert result[0].path == "derive"

    def test_missing_bind_values(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        with pytest.raises(BindError):
            conn.cursor().execute(query)
        with pytest.raises(BindError):
            conn.cursor().execute(query, [])

    def test_extra_bind_values(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        with pytest.raises(BindError):
            conn.cursor().execute(query, ["red", "nir"])

    def test_named_missing_and_extra_keys(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = :band")
        with pytest.raises(BindError):
            conn.cursor().execute(query, {})
        with pytest.raises(BindError):
            conn.cursor().execute(query, {"band": "red", "ghost": 1})

    def test_positional_values_for_named_statement(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = :band")
        with pytest.raises(BindError):
            conn.cursor().execute(query, ["red"])

    def test_mixing_styles_is_a_parse_error(self, conn):
        with pytest.raises(ParseError):
            conn.prepare(
                "SELECT FROM landsat_tm WHERE band = ? AND area = :area"
            )
        # Mixing across statements of one source is just as unbindable.
        with pytest.raises(ParseError):
            conn.prepare(
                "SELECT FROM landsat_tm WHERE band = ?; "
                "SELECT FROM landsat_tm WHERE area = :area"
            )

    def test_positional_params_span_statements(self, conn):
        results = conn.execute(
            "SELECT FROM landsat_tm WHERE band = ?; "
            "SELECT FROM landsat_tm WHERE band = ?",
            ["red", "nir"],
        )
        assert [obj["band"] for r in results for obj in r.objects] == \
            ["red", "nir"]

    def test_wrongly_typed_box_parameter(self, conn):
        query = conn.prepare(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS ?"
        )
        with pytest.raises(BindError):
            conn.cursor().execute(query, ["not a box"])

    def test_unbound_execution_rejected(self, conn):
        from repro.query import GaeaSession

        session = GaeaSession(kernel=conn.kernel)
        with pytest.raises(BindError):
            session.execute("SELECT FROM landsat_tm WHERE band = ?")

    def test_explain_resolves_deferred_path(self, conn):
        [before] = conn.execute(
            "EXPLAIN SELECT FROM land_cover WHERE timestamp = ?",
            ["1986-01-15"],
        )
        assert before.details["paths"]["land_cover"] == "derive"
        conn.execute("SELECT FROM land_cover WHERE timestamp = ?",
                     ["1986-01-15"])
        [after] = conn.execute(
            "EXPLAIN SELECT FROM land_cover WHERE timestamp = ?",
            ["1986-01-15"],
        )
        assert after.details["paths"]["land_cover"] == "retrieve"


class TestPlanCache:
    def test_repeated_source_text_hits_cache(self, conn):
        cur = conn.cursor()
        misses_before = conn.cache_misses
        for _ in range(5):
            cur.execute("SELECT FROM landsat_tm")
            cur.fetchall()
        assert conn.cache_misses == misses_before + 1
        assert conn.cache_hits >= 4

    def test_ddl_invalidates_cached_plans(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        cur = conn.cursor()
        cur.execute(query, ["red"])
        cur.fetchall()
        conn.execute("DEFINE CONCEPT probe MEMBERS landsat_tm")
        invalidations_before = conn.plan_cache.invalidations
        cur.execute(query, ["red"])
        assert len(cur.fetchall()) == 1
        assert conn.plan_cache.invalidations == invalidations_before + 1

    def test_concept_membership_change_replans(self, conn):
        conn.execute("DEFINE CONCEPT scenes MEMBERS landsat_tm")
        query = conn.prepare("SELECT FROM scenes WHERE timestamp = ?")
        results = conn.execute(query, ["1986-01-15"])
        assert [r.details["class"] for r in results] == ["landsat_tm"]
        # Attaching a member directly on the kernel bumps the concept
        # revision, so the cached plan must not be served stale.
        conn.kernel.concepts.attach_class("scenes", "land_cover")
        results = conn.execute(query, ["1986-01-15"])
        assert [r.details["class"] for r in results] == \
            ["land_cover", "landsat_tm"]

    def test_lru_eviction_is_bounded(self, conn):
        small = connect(kernel=conn.kernel, plan_cache_size=2)
        cur = small.cursor()
        for band in ("red", "nir", "green"):
            cur.execute(f"SELECT FROM landsat_tm WHERE band = '{band}'")
            cur.fetchall()
        assert len(small.plan_cache) == 2


class TestTransactions:
    def _store_scene(self, conn, band="extra"):
        generator = SceneGenerator(seed=9, nrow=16, ncol=16)
        image = generator.scene("africa", 1987, 1)[0]
        return conn.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA,
            "timestamp": AbsTime.from_ymd(1987, 1, 15),
        })

    def test_commit_makes_objects_durable(self, conn):
        conn.begin()
        self._store_scene(conn)
        conn.commit()
        cur = conn.cursor()
        cur.execute("SELECT FROM landsat_tm WHERE band = ?", ["extra"])
        assert len(cur.fetchall()) == 1

    def test_rollback_discards_objects(self, conn):
        conn.begin()
        self._store_scene(conn)
        cur = conn.cursor()
        cur.execute("SELECT FROM landsat_tm WHERE band = ?", ["extra"])
        assert len(cur.fetchall()) == 1  # the writer sees its own work
        conn.rollback()
        cur.execute("SELECT FROM landsat_tm WHERE band = ?", ["extra"])
        assert cur.fetchall() == []

    def test_double_begin_rejected(self, conn):
        conn.begin()
        with pytest.raises(InterfaceError):
            conn.begin()
        conn.rollback()

    def test_single_writer_across_connections(self, conn):
        other = connect(kernel=conn.kernel)
        conn.begin()
        with pytest.raises(TransactionError):
            other.begin()
        conn.rollback()
        other.begin()
        other.rollback()

    def test_rollback_of_a_derivation_does_not_poison_reuse(self, conn):
        """A derivation executed (and task-logged) inside a rolled-back
        transaction must not leave the class unretrievable: the memoized
        task's output is gone, so the next query recomputes."""
        conn.begin()
        first = conn.execute("SELECT FROM land_cover WHERE timestamp = ?",
                             ["1986-01-15"])
        assert first[0].path == "derive"
        rolled_back_oid = first[0].objects[0].oid
        conn.rollback()
        again = conn.execute("SELECT FROM land_cover WHERE timestamp = ?",
                             ["1986-01-15"])
        assert again[0].path == "derive"
        assert again[0].objects[0].oid != rolled_back_oid
        from repro.errors import UnknownClassError
        with pytest.raises(UnknownClassError):
            conn.kernel.store.get(rolled_back_oid)

    def test_context_manager_commits_on_success(self):
        with connect(universe=AFRICA) as conn:
            conn.cursor().run(DDL)
            conn.begin()
            generator = SceneGenerator(seed=9, nrow=16, ncol=16)
            conn.kernel.store.store("landsat_tm", {
                "area": "africa", "band": "red",
                "data": generator.scene("africa", 1987, 1)[0],
                "spatialextent": AFRICA,
                "timestamp": AbsTime.from_ymd(1987, 1, 15),
            })
            kernel = conn.kernel
        assert conn.closed
        fresh = connect(kernel=kernel)
        cur = fresh.cursor().execute("SELECT FROM landsat_tm")
        assert len(cur.fetchall()) == 1


class TestSharedKernel:
    def test_two_connections_share_data_not_caches(self, conn):
        other = connect(kernel=conn.kernel)
        cur = other.cursor().execute("SELECT FROM landsat_tm")
        assert len(cur.fetchall()) == 3
        assert other.cache_misses == 1
        assert other.cache_hits == 0
        assert conn.kernel is other.kernel

    def test_session_migration_helper(self, conn):
        session = open_session(universe=AFRICA)
        bridged = session.connection()
        assert bridged.kernel is session.kernel


class TestSessionShim:
    def test_execute_one_raises_typed_error(self, conn):
        session = open_session(universe=AFRICA)
        with pytest.raises(ResultCardinalityError) as excinfo:
            session.execute_one("SHOW TYPES; SHOW OPERATORS")
        assert isinstance(excinfo.value, GaeaError)
        assert isinstance(excinfo.value, ValueError)
