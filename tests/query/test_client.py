"""Tests for the v2 client API: connect/Connection/Cursor, prepared
statements with parameter binding, the plan cache, streaming fetches,
and transactions."""

import pytest

from repro import connect, open_session
from repro.errors import (
    BindError,
    GaeaError,
    InterfaceError,
    ParseError,
    ResultCardinalityError,
    TransactionError,
)
from repro.figures import AFRICA
from repro.gis import SceneGenerator
from repro.spatial import Box
from repro.temporal import AbsTime


DDL = """
DEFINE CLASS landsat_tm (
  ATTRIBUTES: area = char16; band = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS land_cover (
  ATTRIBUTES: area = char16; numclass = int4; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20
OUTPUT land_cover
ARGUMENT ( SETOF landsat_tm bands >= 3 )
TEMPLATE {
  ASSERTIONS:
    card(bands) = 3;
    common(bands.spatialextent);
    common(bands.timestamp);
  MAPPINGS:
    land_cover.data = unsuperclassify(composite(bands), 12);
    land_cover.numclass = 12;
    land_cover.area = ANYOF bands.area;
    land_cover.spatialextent = ANYOF bands.spatialextent;
    land_cover.timestamp = ANYOF bands.timestamp;
}
"""


@pytest.fixture()
def conn():
    connection = connect(universe=AFRICA)
    connection.cursor().run(DDL)
    generator = SceneGenerator(seed=4, nrow=16, ncol=16)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(("red", "nir", "green"),
                           generator.scene("africa", 1986, 1)):
        connection.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    return connection


class TestCursorBasics:
    def test_execute_ddl_collects_messages(self, conn):
        cur = conn.cursor()
        cur.execute("DEFINE CONCEPT cover MEMBERS land_cover")
        assert any("cover" in r.message for r in cur.results)

    def test_fetchone_streams_objects(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm")
        first = cur.fetchone()
        assert first.class_name == "landsat_tm"
        assert cur.rowcount == -1  # stream still open
        rest = cur.fetchall()
        assert len(rest) == 2
        assert cur.rowcount == 3
        assert cur.fetchone() is None

    def test_fetchmany_and_iteration(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm")
        assert len(cur.fetchmany(2)) == 2
        assert len(list(cur)) == 1

    def test_description_from_class_schema(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm")
        names = [column[0] for column in cur.description]
        assert "band" in names and "spatialextent" in names

    def test_statements_after_retrieval_run_on_drain(self, conn):
        cur = conn.cursor().execute("SELECT FROM landsat_tm; SHOW CLASSES")
        assert cur.results == []  # SHOW not reached yet
        cur.fetchall()
        assert any("CLASS landsat_tm" in r.message for r in cur.results)

    def test_closed_cursor_and_connection_reject_use(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(InterfaceError):
            cur.execute("SHOW CLASSES")
        conn.close()
        with pytest.raises(InterfaceError):
            conn.cursor()

    def test_run_preserves_statement_order(self, conn):
        results = conn.cursor().run("SHOW CLASSES; SELECT FROM landsat_tm")
        assert [r.kind for r in results] == ["message", "objects"]


class TestParameterBinding:
    def test_positional_rebinding_cached_plan(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        cur = conn.cursor()
        for band in ("red", "nir", "green"):
            cur.execute(query, [band])
            [obj] = cur.fetchall()
            assert obj["band"] == band
        assert conn.cache_hits >= 3

    def test_named_parameters(self, conn):
        cur = conn.cursor()
        cur.execute(
            "SELECT FROM landsat_tm WHERE band = :band AND area = :area",
            {"band": "nir", "area": "africa"},
        )
        assert len(cur.fetchall()) == 1

    def test_timestamp_parameter_accepts_string_and_abstime(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE timestamp = ?")
        cur = conn.cursor()
        cur.execute(query, ["1986-01-15"])
        assert len(cur.fetchall()) == 3
        cur.execute(query, [AbsTime.from_ymd(1986, 1, 15)])
        assert len(cur.fetchall()) == 3

    def test_box_coordinate_and_whole_box_parameters(self, conn):
        cur = conn.cursor()
        cur.execute(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS "
            "(?, ?, 52, 38)", [-20.0, -35.0],
        )
        assert len(cur.fetchall()) == 3
        cur.execute(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS ?",
            [Box(-20.0, -35.0, 52.0, 38.0)],
        )
        assert len(cur.fetchall()) == 3

    def test_derive_with_parameters(self, conn):
        result = conn.execute("DERIVE land_cover AT ?", ["1986-01-15"])
        assert result[0].path == "derive"

    def test_missing_bind_values(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        with pytest.raises(BindError):
            conn.cursor().execute(query)
        with pytest.raises(BindError):
            conn.cursor().execute(query, [])

    def test_extra_bind_values(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        with pytest.raises(BindError):
            conn.cursor().execute(query, ["red", "nir"])

    def test_named_missing_and_extra_keys(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = :band")
        with pytest.raises(BindError):
            conn.cursor().execute(query, {})
        with pytest.raises(BindError):
            conn.cursor().execute(query, {"band": "red", "ghost": 1})

    def test_positional_values_for_named_statement(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = :band")
        with pytest.raises(BindError):
            conn.cursor().execute(query, ["red"])

    def test_mixing_styles_is_a_parse_error(self, conn):
        with pytest.raises(ParseError):
            conn.prepare(
                "SELECT FROM landsat_tm WHERE band = ? AND area = :area"
            )
        # Mixing across statements of one source is just as unbindable.
        with pytest.raises(ParseError):
            conn.prepare(
                "SELECT FROM landsat_tm WHERE band = ?; "
                "SELECT FROM landsat_tm WHERE area = :area"
            )

    def test_positional_params_span_statements(self, conn):
        results = conn.execute(
            "SELECT FROM landsat_tm WHERE band = ?; "
            "SELECT FROM landsat_tm WHERE band = ?",
            ["red", "nir"],
        )
        assert [obj["band"] for r in results for obj in r.objects] == \
            ["red", "nir"]

    def test_wrongly_typed_box_parameter(self, conn):
        query = conn.prepare(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS ?"
        )
        with pytest.raises(BindError):
            conn.cursor().execute(query, ["not a box"])

    def test_unbound_execution_rejected(self, conn):
        from repro.query import GaeaSession

        session = GaeaSession(kernel=conn.kernel)
        with pytest.raises(BindError):
            session.execute("SELECT FROM landsat_tm WHERE band = ?")

    def test_explain_resolves_deferred_path(self, conn):
        [before] = conn.execute(
            "EXPLAIN SELECT FROM land_cover WHERE timestamp = ?",
            ["1986-01-15"],
        )
        assert before.details["paths"]["land_cover"] == "derive"
        conn.execute("SELECT FROM land_cover WHERE timestamp = ?",
                     ["1986-01-15"])
        [after] = conn.execute(
            "EXPLAIN SELECT FROM land_cover WHERE timestamp = ?",
            ["1986-01-15"],
        )
        assert after.details["paths"]["land_cover"] == "retrieve"


class TestPlanCache:
    def test_repeated_source_text_hits_cache(self, conn):
        cur = conn.cursor()
        misses_before = conn.cache_misses
        for _ in range(5):
            cur.execute("SELECT FROM landsat_tm")
            cur.fetchall()
        assert conn.cache_misses == misses_before + 1
        assert conn.cache_hits >= 4

    def test_ddl_invalidates_cached_plans(self, conn):
        query = conn.prepare("SELECT FROM landsat_tm WHERE band = ?")
        cur = conn.cursor()
        cur.execute(query, ["red"])
        cur.fetchall()
        conn.execute("DEFINE CONCEPT probe MEMBERS landsat_tm")
        invalidations_before = conn.plan_cache.invalidations
        cur.execute(query, ["red"])
        assert len(cur.fetchall()) == 1
        assert conn.plan_cache.invalidations == invalidations_before + 1

    def test_concept_membership_change_replans(self, conn):
        conn.execute("DEFINE CONCEPT scenes MEMBERS landsat_tm")
        query = conn.prepare("SELECT FROM scenes WHERE timestamp = ?")
        results = conn.execute(query, ["1986-01-15"])
        assert [r.details["class"] for r in results] == ["landsat_tm"]
        # Attaching a member directly on the kernel bumps the concept
        # revision, so the cached plan must not be served stale.
        conn.kernel.concepts.attach_class("scenes", "land_cover")
        results = conn.execute(query, ["1986-01-15"])
        assert [r.details["class"] for r in results] == \
            ["land_cover", "landsat_tm"]

    def test_lru_eviction_is_bounded(self, conn):
        small = connect(kernel=conn.kernel, plan_cache_size=2)
        cur = small.cursor()
        for band in ("red", "nir", "green"):
            cur.execute(f"SELECT FROM landsat_tm WHERE band = '{band}'")
            cur.fetchall()
        assert len(small.plan_cache) == 2


class TestTransactions:
    def _store_scene(self, conn, band="extra"):
        generator = SceneGenerator(seed=9, nrow=16, ncol=16)
        image = generator.scene("africa", 1987, 1)[0]
        return conn.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA,
            "timestamp": AbsTime.from_ymd(1987, 1, 15),
        })

    def test_commit_makes_objects_durable(self, conn):
        conn.begin()
        self._store_scene(conn)
        conn.commit()
        cur = conn.cursor()
        cur.execute("SELECT FROM landsat_tm WHERE band = ?", ["extra"])
        assert len(cur.fetchall()) == 1

    def test_rollback_discards_objects(self, conn):
        conn.begin()
        self._store_scene(conn)
        cur = conn.cursor()
        cur.execute("SELECT FROM landsat_tm WHERE band = ?", ["extra"])
        assert len(cur.fetchall()) == 1  # the writer sees its own work
        conn.rollback()
        cur.execute("SELECT FROM landsat_tm WHERE band = ?", ["extra"])
        assert cur.fetchall() == []

    def test_double_begin_rejected(self, conn):
        conn.begin()
        with pytest.raises(InterfaceError):
            conn.begin()
        conn.rollback()

    def test_single_writer_across_connections(self, conn):
        other = connect(kernel=conn.kernel)
        conn.begin()
        with pytest.raises(TransactionError):
            other.begin()
        conn.rollback()
        other.begin()
        other.rollback()

    def test_rollback_of_a_derivation_does_not_poison_reuse(self, conn):
        """A derivation executed (and task-logged) inside a rolled-back
        transaction must not leave the class unretrievable: the memoized
        task's output is gone, so the next query recomputes."""
        conn.begin()
        first = conn.execute("SELECT FROM land_cover WHERE timestamp = ?",
                             ["1986-01-15"])
        assert first[0].path == "derive"
        rolled_back_oid = first[0].objects[0].oid
        conn.rollback()
        again = conn.execute("SELECT FROM land_cover WHERE timestamp = ?",
                             ["1986-01-15"])
        assert again[0].path == "derive"
        assert again[0].objects[0].oid != rolled_back_oid
        from repro.errors import UnknownClassError
        with pytest.raises(UnknownClassError):
            conn.kernel.store.get(rolled_back_oid)

    def test_context_manager_commits_on_success(self):
        with connect(universe=AFRICA) as conn:
            conn.cursor().run(DDL)
            conn.begin()
            generator = SceneGenerator(seed=9, nrow=16, ncol=16)
            conn.kernel.store.store("landsat_tm", {
                "area": "africa", "band": "red",
                "data": generator.scene("africa", 1987, 1)[0],
                "spatialextent": AFRICA,
                "timestamp": AbsTime.from_ymd(1987, 1, 15),
            })
            kernel = conn.kernel
        assert conn.closed
        fresh = connect(kernel=kernel)
        cur = fresh.cursor().execute("SELECT FROM landsat_tm")
        assert len(cur.fetchall()) == 1


class TestSharedKernel:
    def test_two_connections_share_data_not_caches(self, conn):
        other = connect(kernel=conn.kernel)
        cur = other.cursor().execute("SELECT FROM landsat_tm")
        assert len(cur.fetchall()) == 3
        assert other.cache_misses == 1
        assert other.cache_hits == 0
        assert conn.kernel is other.kernel

    def test_session_migration_helper(self, conn):
        session = open_session(universe=AFRICA)
        bridged = session.connection()
        assert bridged.kernel is session.kernel


class TestSessionShim:
    def test_execute_one_raises_typed_error(self, conn):
        session = open_session(universe=AFRICA)
        with pytest.raises(ResultCardinalityError) as excinfo:
            session.execute_one("SHOW TYPES; SHOW OPERATORS")
        assert isinstance(excinfo.value, GaeaError)
        assert isinstance(excinfo.value, ValueError)


SITE_DDL = """
DEFINE CLASS site (
  ATTRIBUTES: code = int4; reading = float8; name = char16;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""


@pytest.fixture()
def site_conn():
    connection = connect(universe=Box(0, 0, 100, 100))
    connection.cursor().run(SITE_DDL)
    stamp = AbsTime.from_ymd(1990, 6, 1)
    for i in range(60):
        connection.kernel.store.store("site", {
            "code": i % 6, "reading": float(i), "name": f"s{i}",
            "cell": Box(i % 10, i % 10, i % 10 + 1, i % 10 + 1),
            "timestamp": stamp,
        })
    return connection


class TestIndexedRetrieval:
    def test_create_index_switches_plan_to_index_probe(self, site_conn):
        cur = site_conn.cursor()
        query = "SELECT FROM site WHERE code = 3"
        assert "full-scan" in cur.explain(query)
        before = cur.execute(query).fetchall()

        cur.execute("CREATE INDEX ON site (code)")
        assert "index-eq(code=3)" in cur.explain(query)
        after = cur.execute(query).fetchall()
        assert sorted(o["name"] for o in after) \
            == sorted(o["name"] for o in before)
        assert len(after) == 10

    def test_index_ddl_invalidates_cached_plan(self, site_conn):
        cur = site_conn.cursor()
        query = "SELECT FROM site WHERE code = 3"
        cur.execute(query).fetchall()
        cur.execute(query).fetchall()  # served from the plan cache
        invalidations = site_conn.plan_cache.invalidations
        cur.execute("CREATE INDEX ON site (code)")
        cur.execute(query).fetchall()  # must re-plan, not reuse full-scan
        assert site_conn.plan_cache.invalidations == invalidations + 1
        assert "index-eq" in cur.explain(query)

    def test_range_predicate_with_binds_uses_index(self, site_conn):
        cur = site_conn.cursor()
        cur.execute("CREATE INDEX ON site (reading)")
        query = "SELECT FROM site WHERE reading >= ? AND reading <= ?"
        rows = cur.execute(query, [40.0, 44.0]).fetchall()
        assert sorted(o["reading"] for o in rows) \
            == [40.0, 41.0, 42.0, 43.0, 44.0]
        assert "index-range(reading" in cur.explain(query, [40.0, 44.0])

    def test_drop_index_reverts_to_full_scan(self, site_conn):
        cur = site_conn.cursor()
        cur.execute("CREATE INDEX ON site (code)")
        cur.execute("DROP INDEX ON site (code)")
        assert "full-scan" in cur.explain("SELECT FROM site WHERE code = 3")
        assert len(cur.execute("SELECT FROM site WHERE code = 3")
                   .fetchall()) == 10

    def test_show_indexes_lists_catalog_entries(self, site_conn):
        cur = site_conn.cursor()
        cur.execute("CREATE INDEX ON site (code)")
        [result] = cur.execute("SHOW INDEXES").results
        assert "(code) [btree]" in result.message
        assert "[spatial]" in result.message  # extent index from DDL

    def test_streaming_fetchone_from_index_scan(self, site_conn):
        cur = site_conn.cursor()
        cur.execute("CREATE INDEX ON site (code)")
        cur.execute("SELECT FROM site WHERE code = 2")
        first = cur.fetchone()
        assert first["code"] == 2
        assert cur.rowcount == -1  # stream still open
        assert len(cur.fetchall()) == 9


class TestExecutemanyPlanReuse:
    def test_one_cache_access_for_many_parameter_sets(self, site_conn):
        cur = site_conn.cursor()
        query = "SELECT FROM site WHERE code = ?"
        hits0, misses0 = site_conn.cache_hits, site_conn.cache_misses
        cur.executemany(query, [[i] for i in range(6)])
        # One compile (a miss) for the whole batch — parameter sets bind
        # against the same plan template without re-keying the cache.
        assert site_conn.cache_misses == misses0 + 1
        assert site_conn.cache_hits == hits0

    def test_prepared_statement_batch_is_one_hit(self, site_conn):
        cur = site_conn.cursor()
        prepared = site_conn.prepare("SELECT FROM site WHERE code = ?")
        hits0, misses0 = site_conn.cache_hits, site_conn.cache_misses
        cur.executemany(prepared, [[i] for i in range(6)])
        assert site_conn.cache_hits == hits0 + 1
        assert site_conn.cache_misses == misses0

    def test_executemany_results_match_execute(self, site_conn):
        cur = site_conn.cursor()
        per_set = [
            len(cur.execute("SELECT FROM site WHERE code = ?", [i])
                .fetchall())
            for i in range(6)
        ]
        assert per_set == [10] * 6
        cur.executemany("SELECT FROM site WHERE code = ?",
                        [[i] for i in range(6)])
        assert cur.rowcount == 10  # last batch's drained count


class TestPredicateCoercionAndErrors:
    def test_run_and_execute_agree_on_timestamp_range(self, site_conn):
        # String date literals coerce to AbsTime on every path: the
        # streaming cursor and the materializing run() must agree.
        q = "SELECT FROM site WHERE timestamp >= '1990-01-01'"
        streamed = site_conn.cursor().execute(q).fetchall()
        [result] = site_conn.cursor().run(q)
        assert len(result.objects) == len(streamed) == 60
        q_empty = "SELECT FROM site WHERE timestamp > '1999-01-01'"
        assert site_conn.cursor().execute(q_empty).fetchall() == []
        [empty] = site_conn.cursor().run(q_empty)
        assert empty.objects == ()

    def test_incomparable_range_literal_raises_typed_error(self, site_conn):
        cur = site_conn.cursor()
        with pytest.raises(GaeaError):
            cur.execute("SELECT FROM site WHERE name > 5").fetchall()
