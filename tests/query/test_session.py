"""End-to-end tests for the GaeaQL session (optimizer + executor)."""

import pytest

from repro.errors import PlanningError, UnderivableError
from repro.figures import AFRICA
from repro.gis import SceneGenerator
from repro.temporal import AbsTime


DDL = """
DEFINE CLASS landsat_tm (
  ATTRIBUTES: area = char16; band = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS land_cover (
  ATTRIBUTES: area = char16; numclass = int4; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20
OUTPUT land_cover
ARGUMENT ( SETOF landsat_tm bands >= 3 )
TEMPLATE {
  ASSERTIONS:
    card(bands) = 3;
    common(bands.spatialextent);
    common(bands.timestamp);
  MAPPINGS:
    land_cover.data = unsuperclassify(composite(bands), 12);
    land_cover.numclass = 12;
    land_cover.area = ANYOF bands.area;
    land_cover.spatialextent = ANYOF bands.spatialextent;
    land_cover.timestamp = ANYOF bands.timestamp;
}
"""


@pytest.fixture()
def loaded(session):
    session.execute(DDL)
    generator = SceneGenerator(seed=4, nrow=16, ncol=16)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(("red", "nir", "green"),
                           generator.scene("africa", 1986, 1)):
        session.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    return session


class TestDDL:
    def test_definitions_land_in_kernel(self, loaded):
        assert "land_cover" in loaded.kernel.classes
        assert "P20" in loaded.kernel.derivations.processes

    def test_show_classes(self, loaded):
        message = loaded.execute_one("SHOW CLASSES").message
        assert "CLASS landsat_tm" in message
        assert "DERIVED BY: P20" in message

    def test_show_processes(self, loaded):
        message = loaded.execute_one("SHOW PROCESSES").message
        assert "DEFINE PROCESS P20" in message


class TestRetrieval:
    def test_derive_then_retrieve(self, loaded):
        first = loaded.execute_one(
            "SELECT FROM land_cover WHERE timestamp = '1986-01-15'"
        )
        assert first.path == "derive"
        assert first.details["plan_steps"] == ["P20"]
        second = loaded.execute_one(
            "SELECT FROM land_cover WHERE timestamp = '1986-01-15'"
        )
        assert second.path == "retrieve"

    def test_explain_before_and_after(self, loaded):
        before = loaded.execute_one("EXPLAIN SELECT FROM land_cover")
        assert before.details["paths"]["land_cover"] == "derive"
        loaded.execute_one("SELECT FROM land_cover")
        after = loaded.execute_one("EXPLAIN SELECT FROM land_cover")
        assert after.details["paths"]["land_cover"] == "retrieve"

    def test_derive_statement_forces_recomputation(self, loaded):
        loaded.execute_one("SELECT FROM land_cover")
        result = loaded.execute_one("DERIVE land_cover")
        assert result.path == "derive"

    def test_unknown_source(self, loaded):
        with pytest.raises(PlanningError):
            loaded.execute("SELECT FROM ghost")

    def test_underivable_query(self, session):
        session.execute(DDL)  # classes defined but no scenes loaded
        with pytest.raises(UnderivableError):
            session.execute("SELECT FROM land_cover")

    def test_spatial_predicate_filters(self, loaded):
        result = loaded.execute_one(
            "SELECT FROM landsat_tm WHERE spatialextent OVERLAPS "
            "(-20, -35, 52, 38)"
        )
        assert len(result.objects) == 3


class TestConceptQueries:
    def test_select_from_concept(self, loaded):
        loaded.execute("DEFINE CONCEPT cover_concept MEMBERS land_cover")
        results = loaded.execute("SELECT FROM cover_concept")
        assert len(results) == 1
        assert results[0].details["class"] == "land_cover"
        assert results[0].details["concept"] == "cover_concept"

    def test_concept_without_members_rejected(self, loaded):
        loaded.execute("DEFINE CONCEPT empty_concept")
        with pytest.raises(PlanningError):
            loaded.execute("SELECT FROM empty_concept")

    def test_show_concepts(self, loaded):
        loaded.execute("DEFINE CONCEPT cover_concept MEMBERS land_cover")
        message = loaded.execute_one("SHOW CONCEPTS").message
        assert "cover_concept" in message and "land_cover" in message


class TestRunAndLineage:
    def test_run_process_by_oids(self, loaded):
        result = loaded.execute_one("RUN P20 WITH bands = (1, 2, 3)")
        assert result.path == "run"
        assert result.objects[0].class_name == "land_cover"

    def test_run_unbound_argument(self, loaded):
        with pytest.raises(UnderivableError):
            loaded.execute("RUN P20")

    def test_lineage_query(self, loaded):
        run = loaded.execute_one("RUN P20 WITH bands = (1, 2, 3)")
        oid = run.objects[0].oid
        lineage = loaded.execute_one(f"LINEAGE {oid}")
        assert lineage.details["base_oids"] == [1, 2, 3]
        assert lineage.details["depth"] == 1

    def test_show_tasks(self, loaded):
        loaded.execute_one("RUN P20 WITH bands = (1, 2, 3)")
        message = loaded.execute_one("SHOW TASKS").message
        assert "P20" in message

    def test_run_memoizes(self, loaded):
        first = loaded.execute_one("RUN P20 WITH bands = (1, 2, 3)")
        second = loaded.execute_one("RUN P20 WITH bands = (1, 2, 3)")
        assert not first.details["reused"]
        assert second.details["reused"]
        assert first.objects[0].oid == second.objects[0].oid


class TestSessionMechanics:
    def test_history_recorded(self, loaded):
        loaded.execute("SHOW TASKS")
        assert loaded.history[-1] == "SHOW TASKS"

    def test_execute_one_rejects_multi(self, loaded):
        with pytest.raises(ValueError):
            loaded.execute_one("SHOW TASKS; SHOW CLASSES")


class TestDeprecationShim:
    def test_warns_exactly_once_per_process(self):
        import warnings

        from repro.query import session as session_module
        from repro.query.session import open_session

        session_module._DEPRECATION_WARNED = False
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            open_session()
        # The second session in the same process must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            open_session()
        assert session_module._DEPRECATION_WARNED

    def test_direct_construction_also_warns(self):
        from repro.core import open_kernel
        from repro.query import session as session_module
        from repro.query.session import GaeaSession

        session_module._DEPRECATION_WARNED = False
        with pytest.warns(DeprecationWarning):
            GaeaSession(kernel=open_kernel())
