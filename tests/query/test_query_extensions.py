"""Tests for GaeaQL extensions: attribute filters and browsing SHOWs."""

import pytest

from repro.figures import build_figure2, populate_scenes
from repro.query import parse_statement


@pytest.fixture()
def catalog():
    catalog = build_figure2()
    populate_scenes(catalog, seed=77, size=16, years=(1988,))
    return catalog


class TestAttributeFilters:
    def test_parse_filters(self):
        stmt = parse_statement(
            "SELECT FROM landsat_tm_rectified WHERE band = 'red' "
            "AND timestamp = '1988-07-01'"
        )
        assert stmt.filters == (("band", "red"),)
        assert stmt.temporal is not None

    def test_parse_numeric_filter(self):
        stmt = parse_statement("SELECT FROM land_cover_c20 WHERE numclass = 12")
        assert stmt.filters == (("numclass", 12),)

    def test_filter_narrows_results(self, catalog):
        result = catalog.session.execute_one(
            "SELECT FROM landsat_tm_rectified WHERE band = 'red'"
        )
        assert len(result.objects) == 1
        assert result.objects[0]["band"] == "red"

    def test_filter_to_empty(self, catalog):
        result = catalog.session.execute_one(
            "SELECT FROM landsat_tm_rectified WHERE band = 'thermal'"
        )
        assert result.objects == ()

    def test_filter_combined_with_extent(self, catalog):
        result = catalog.session.execute_one(
            "SELECT FROM landsat_tm_rectified WHERE band = 'nir' "
            "AND timestamp = '1988-07-01'"
        )
        assert len(result.objects) == 1
        assert result.objects[0]["band"] == "nir"


class TestBrowsingShows:
    def test_show_operators(self, catalog):
        message = catalog.session.execute_one("SHOW OPERATORS").message
        assert "img_nrow(image) -> int4" in message
        assert "unsuperclassify" in message
        # §4.2: docs travel with the operators.
        assert "// return # of rows" in message

    def test_show_types(self, catalog):
        message = catalog.session.execute_one("SHOW TYPES").message
        assert "TYPE image" in message
        assert "TYPE int4 ISA numeric" in message

    def test_show_operators_includes_overloads(self, catalog):
        message = catalog.session.execute_one("SHOW OPERATORS").message
        # The Figure-4 operator appears under both paper and Python names.
        assert "convert-image-matrix" in message
        assert "convert_image_matrix" in message
