"""Tests for the GaeaQL lexer."""

import pytest

from repro.errors import LexError
from repro.query import TokenType, tokenize


def _types(source):
    return [t.type for t in tokenize(source)]


def _texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive(self):
        for form in ("select", "SELECT", "Select"):
            token = tokenize(form)[0]
            assert token.type is TokenType.KEYWORD and token.text == "SELECT"

    def test_identifiers(self):
        token = tokenize("land_cover")[0]
        assert token.type is TokenType.IDENT and token.text == "land_cover"

    def test_hyphenated_identifier(self):
        assert _texts("unsupervised-classification") == [
            "unsupervised-classification"
        ]

    def test_hyphen_before_number_is_negative_literal(self):
        tokens = tokenize("x -5")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[1].type is TokenType.NUMBER
        assert tokens[1].text == "-5"

    def test_numbers(self):
        assert _texts("12 3.5 -7.25") == ["12", "3.5", "-7.25"]

    def test_strings_both_quotes(self):
        assert _texts("'abc' \"def\"") == ["abc", "def"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_comments_skipped(self):
        assert _texts("a // comment here\nb") == ["a", "b"]

    def test_comparison_operators(self):
        assert _types(">= <= > < =")[:-1] == [
            TokenType.GE, TokenType.LE, TokenType.GT, TokenType.LT,
            TokenType.EQUALS,
        ]

    def test_punctuation(self):
        assert _types("( ) { } , ; : . $")[:-1] == [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.LBRACE,
            TokenType.RBRACE, TokenType.COMMA, TokenType.SEMICOLON,
            TokenType.COLON, TokenType.DOT, TokenType.DOLLAR,
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_figure3_statement_lexes(self):
        from repro.figures import FIGURE3_SOURCE

        tokens = tokenize(FIGURE3_SOURCE)
        texts = [t.text for t in tokens]
        assert "DEFINE" in texts and "TEMPLATE" in texts
        assert "unsupervised-classification" in texts
