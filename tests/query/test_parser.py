"""Tests for the GaeaQL parser."""

import pytest

from repro.core import (
    AnyOf,
    Apply,
    AttrRef,
    CardinalityAssertion,
    CommonSpatialAssertion,
    CommonTemporalAssertion,
    Literal,
    ParamRef,
)
from repro.errors import ParseError
from repro.query import (
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    DropIndex,
    Explain,
    LineageQuery,
    Param,
    RunProcess,
    Select,
    Show,
    parse,
    parse_statement,
)
from repro.spatial import Box
from repro.temporal import AbsTime


class TestDefineClass:
    def test_full_class(self):
        stmt = parse_statement("""
        DEFINE CLASS landcover (
          ATTRIBUTES: area = char16; data = image;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
          DERIVED BY: unsupervised-classification
        )
        """)
        assert isinstance(stmt, DefineClass)
        assert stmt.name == "landcover"
        assert ("area", "char16") in stmt.attributes
        assert stmt.spatial_attr == "spatialextent"
        assert stmt.temporal_attr == "timestamp"
        assert stmt.derived_by == "unsupervised-classification"

    def test_base_class_without_derived_by(self):
        stmt = parse_statement("""
        DEFINE CLASS tm ( ATTRIBUTES: data = image; )
        """)
        assert stmt.derived_by is None
        assert stmt.spatial_attr is None

    def test_two_spatial_extents_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("""
            DEFINE CLASS bad (
              SPATIAL EXTENT: a = box; b = box;
            )
            """)


class TestDefineProcess:
    FIG3 = """
    DEFINE PROCESS P20
    OUTPUT land_cover
    ARGUMENT ( SETOF landsat_tm bands >= 3 )
    TEMPLATE {
      ASSERTIONS:
        card(bands) = 3;
        common(bands.spatialextent);
        common(bands.timestamp);
      MAPPINGS:
        land_cover.data = unsuperclassify(composite(bands), 12);
        land_cover.numclass = 12;
        land_cover.spatialextent = ANYOF bands.spatialextent;
        land_cover.timestamp = ANYOF bands.timestamp;
    }
    """

    def test_figure3_parses(self):
        stmt = parse_statement(self.FIG3)
        assert isinstance(stmt, DefineProcess)
        assert stmt.name == "P20"
        assert stmt.output_class == "land_cover"
        [arg] = stmt.arguments
        assert arg.is_set and arg.min_cardinality == 3

    def test_figure3_assertions(self):
        stmt = parse_statement(self.FIG3)
        kinds = [type(a) for a in stmt.assertions]
        assert kinds == [CardinalityAssertion, CommonSpatialAssertion,
                         CommonTemporalAssertion]
        card = stmt.assertions[0]
        assert card.count == 3 and card.exact

    def test_figure3_mappings(self):
        stmt = parse_statement(self.FIG3)
        mappings = dict(stmt.mappings)
        data = mappings["data"]
        assert isinstance(data, Apply) and data.operator == "unsuperclassify"
        inner = data.args[0]
        # Bare `bands` is sugar for bands.data.
        assert inner == Apply("composite", (AttrRef("bands", "data"),))
        assert data.args[1] == Literal(12)
        assert mappings["numclass"] == Literal(12)
        assert mappings["spatialextent"] == AnyOf(
            AttrRef("bands", "spatialextent")
        )

    def test_parameters_section(self):
        stmt = parse_statement("""
        DEFINE PROCESS P2
        OUTPUT desert
        ARGUMENT ( rainfall rain )
        TEMPLATE {
          MAPPINGS:
            desert.data = desert_mask_rainfall(rain.data, $cutoff);
          PARAMETERS:
            cutoff = 250.0;
        }
        """)
        assert dict(stmt.parameters) == {"cutoff": 250.0}
        data = dict(stmt.mappings)["data"]
        assert data.args[1] == ParamRef("cutoff")

    def test_card_ge_form(self):
        stmt = parse_statement("""
        DEFINE PROCESS P
        OUTPUT c
        ARGUMENT ( SETOF s xs )
        TEMPLATE {
          ASSERTIONS: card(xs) >= 2;
          MAPPINGS: c.data = first_image(xs);
        }
        """)
        assertion = stmt.assertions[0]
        assert assertion.count == 2 and not assertion.exact

    def test_mapping_to_wrong_class_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("""
            DEFINE PROCESS P
            OUTPUT c
            ARGUMENT ( s x )
            TEMPLATE { MAPPINGS: other.data = x.data; }
            """)

    def test_unknown_name_in_expression(self):
        with pytest.raises(ParseError):
            parse_statement("""
            DEFINE PROCESS P
            OUTPUT c
            ARGUMENT ( s x )
            TEMPLATE { MAPPINGS: c.data = mystery; }
            """)

    def test_attr_ref_on_non_argument_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("""
            DEFINE PROCESS P
            OUTPUT c
            ARGUMENT ( s x )
            TEMPLATE { MAPPINGS: c.data = ghost.data; }
            """)

    def test_no_arguments_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("""
            DEFINE PROCESS P
            OUTPUT c
            ARGUMENT ( )
            TEMPLATE { MAPPINGS: c.data = 1; }
            """)


class TestDefineCompoundAndConcept:
    def test_compound(self):
        stmt = parse_statement("""
        DEFINE COMPOUND PROCESS detect
        OUTPUT changes
        ARGUMENT ( SETOF tm a >= 3, SETOF tm b >= 3 )
        STEPS {
          c1: P20 ( bands = $a );
          c2: P20 ( bands = $b );
          cmp: P21 ( later = c2, earlier = c1 );
        }
        RESULT cmp
        """)
        assert isinstance(stmt, DefineCompound)
        assert [s.name for s in stmt.steps] == ["c1", "c2", "cmp"]
        assert dict(stmt.steps[0].bindings) == {"bands": "@a"}
        assert dict(stmt.steps[2].bindings) == {"later": "c2",
                                                "earlier": "c1"}
        assert stmt.output_step == "cmp"

    def test_concept_with_isa_and_members(self):
        stmt = parse_statement(
            "DEFINE CONCEPT hot_desert ISA desert, arid MEMBERS C2, C3"
        )
        assert isinstance(stmt, DefineConcept)
        assert stmt.isa == ("desert", "arid")
        assert stmt.members == ("C2", "C3")

    def test_bare_concept(self):
        stmt = parse_statement("DEFINE CONCEPT desert")
        assert stmt.isa == () and stmt.members == ()


class TestRetrievalStatements:
    def test_select_plain(self):
        stmt = parse_statement("SELECT FROM land_cover")
        assert isinstance(stmt, Select)
        assert stmt.source == "land_cover"
        assert stmt.spatial is None and stmt.temporal is None

    def test_select_with_predicates(self):
        stmt = parse_statement(
            "SELECT FROM land_cover WHERE spatialextent OVERLAPS "
            "(0, 0, 10, 10) AND timestamp = '1986-01-15'"
        )
        assert stmt.spatial == Box(0, 0, 10, 10)
        assert stmt.temporal == AbsTime.from_ymd(1986, 1, 15)

    def test_derive(self):
        stmt = parse_statement("DERIVE land_cover AT '1986-01-15' "
                               "IN (0, 0, 5, 5)")
        assert isinstance(stmt, Derive)
        assert stmt.temporal == AbsTime.from_ymd(1986, 1, 15)
        assert stmt.spatial == Box(0, 0, 5, 5)

    def test_explain(self):
        stmt = parse_statement("EXPLAIN SELECT FROM land_cover")
        assert isinstance(stmt, Explain)
        assert stmt.inner.source == "land_cover"

    def test_run(self):
        stmt = parse_statement("RUN P20 WITH bands = (1, 2, 3)")
        assert isinstance(stmt, RunProcess)
        assert dict(stmt.bindings) == {"bands": (1, 2, 3)}

    def test_show_variants(self):
        for what in ("CLASSES", "PROCESSES", "CONCEPTS", "TASKS",
                     "EXPERIMENTS"):
            stmt = parse_statement(f"SHOW {what}")
            assert isinstance(stmt, Show) and stmt.what == what.lower()

    def test_lineage(self):
        stmt = parse_statement("LINEAGE 42")
        assert isinstance(stmt, LineageQuery) and stmt.oid == 42

    def test_multiple_statements(self):
        statements = parse(
            "DEFINE CONCEPT a; DEFINE CONCEPT b; SELECT FROM x"
        )
        assert len(statements) == 3

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("FROBNICATE everything")

    def test_parse_statement_rejects_plural(self):
        with pytest.raises(ParseError):
            parse_statement("SHOW TASKS SHOW TASKS")


class TestIndexStatements:
    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX ON land_cover (numclass)")
        assert isinstance(stmt, CreateIndex)
        assert (stmt.class_name, stmt.attr, stmt.name) \
            == ("land_cover", "numclass", None)

    def test_create_index_named(self):
        stmt = parse_statement("CREATE INDEX my_idx ON land_cover (area)")
        assert stmt.name == "my_idx"

    def test_drop_index_by_name(self):
        stmt = parse_statement("DROP INDEX my_idx")
        assert isinstance(stmt, DropIndex)
        assert stmt.name == "my_idx" and stmt.class_name is None

    def test_drop_index_by_column(self):
        stmt = parse_statement("DROP INDEX ON land_cover (area)")
        assert stmt.name is None
        assert (stmt.class_name, stmt.attr) == ("land_cover", "area")

    def test_show_indexes(self):
        stmt = parse_statement("SHOW INDEXES")
        assert isinstance(stmt, Show) and stmt.what == "indexes"

    def test_create_without_index_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (a)")


class TestRangePredicates:
    def test_single_comparison(self):
        stmt = parse_statement(
            "SELECT FROM site WHERE reading >= 4.5"
        )
        assert stmt.ranges == (("reading", ">=", 4.5),)
        assert stmt.filters == ()

    def test_window_and_equality_mix(self):
        stmt = parse_statement(
            "SELECT FROM site WHERE code = 7 AND reading > 1 "
            "AND reading < 10"
        )
        assert stmt.filters == (("code", 7),)
        assert stmt.ranges == (("reading", ">", 1), ("reading", "<", 10))

    def test_range_bind_parameter(self):
        stmt = parse_statement("SELECT FROM site WHERE reading <= ?")
        [(attr, op, value)] = stmt.ranges
        assert (attr, op) == ("reading", "<=")
        assert isinstance(value, Param)

    def test_bad_range_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT FROM site WHERE reading >= OVERLAPS")

    def test_comparison_before_overlaps_rejected(self):
        # A stray comparison operator must not be silently swallowed.
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT FROM site WHERE cell >= OVERLAPS (0, 0, 1, 1)"
            )
