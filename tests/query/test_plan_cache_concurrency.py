"""Regression test: the plan-cache LRU is safe under concurrent use.

Before the cache was locked, ``lookup``'s ``move_to_end`` raced with
``store``'s eviction: two threads interleaving the multi-step
OrderedDict mutation could raise KeyError (moving a concurrently
evicted key), lose counter increments, or grow past ``maxsize``.
This hammers one shared cache from many threads and checks exact
bookkeeping afterwards.
"""

from __future__ import annotations

import threading

from repro import connect
from repro.query.optimizer import PlanCache

_THREADS = 8
_ROUNDS = 300


class TestPlanCacheUnderThreads:
    def test_hammered_cache_keeps_exact_counters(self):
        cache = PlanCache(maxsize=4)
        version = ("v1",)
        nodes = ()
        errors: list[BaseException] = []
        gate = threading.Barrier(_THREADS)

        def worker(seed: int):
            try:
                gate.wait()
                for i in range(_ROUNDS):
                    key = f"q{(seed * 7 + i) % 10}"  # > maxsize keys
                    if cache.lookup(key, version) is None:
                        cache.store(key, version, nodes)
            except BaseException as exc:  # noqa: BLE001 — must catch KeyError
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"cache raced: {errors[0]!r}"
        # Every round was exactly one hit or one miss — none lost.
        assert cache.hits + cache.misses == _THREADS * _ROUNDS
        assert len(cache) <= 4

    def test_invalidation_racing_lookups(self):
        """Schema-version bumps mid-hammer only ever produce full
        re-plans, never a stale hit or a corrupted dict."""
        cache = PlanCache(maxsize=8)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                generation = 0
                while not stop.is_set():
                    version = (f"v{generation}",)
                    if cache.lookup("q", version) is None:
                        cache.store("q", version, (("gen", generation),))
                    else:
                        got = cache.lookup("q", version)
                        # A hit must carry the current generation, never
                        # a stale plan from before the bump.
                        if got is not None and got[0][1] != generation:
                            errors.append(
                                AssertionError(f"stale plan {got}")
                            )
                            return
                    generation += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"invalidation raced: {errors[0]!r}"

    def test_shared_connection_compiles_from_many_threads(self):
        """The end-to-end surface: one Connection, one plan cache, many
        threads compiling the same statements concurrently."""
        conn = connect()
        conn.cursor().execute("""
            DEFINE CLASS land_cover (
              ATTRIBUTES: label = char16;
              SPATIAL EXTENT: spatialextent = box;
              TEMPORAL EXTENT: timestamp = abstime;
            )
        """)
        errors: list[BaseException] = []
        gate = threading.Barrier(6)

        def worker(seed: int):
            try:
                gate.wait()
                for i in range(50):
                    day = (seed + i) % 5
                    conn.prepare(
                        f"SELECT FROM land_cover WHERE timestamp = "
                        f"'1986-01-0{day + 1}'"
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"shared compile raced: {errors[0]!r}"
        assert conn.cache_hits + conn.cache_misses == 6 * 50
