"""Tests for the extended GaeaQL algebra: ORDER BY / LIMIT / GROUP BY /
aggregates / JOIN / expression projection, and the operator-tree edge
cases they introduce."""

import pytest

import repro
from repro.errors import PlanningError
from repro.spatial import Box
from repro.temporal import AbsTime


BOX = Box(0.0, 0.0, 10.0, 10.0)
STAMP = AbsTime.from_ymd(1988, 6, 1)

DDL = """
DEFINE CLASS scene (
  ATTRIBUTES: sid = int4; region = char16;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS raster (
  ATTRIBUTES: scene = int4; ndvi = float4; band = int4;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""


@pytest.fixture()
def conn():
    connection = repro.connect()
    cur = connection.cursor()
    cur.execute(DDL)
    store = connection.kernel.store
    scene_oids = []
    for i in range(6):
        obj = store.store("scene", {
            "sid": i, "region": f"reg{i % 3}",
            "spatialextent": BOX, "timestamp": STAMP,
        })
        scene_oids.append(obj.oid)
    for i in range(30):
        store.store("raster", {
            "scene": scene_oids[i % len(scene_oids)],
            "ndvi": (i * 7 % 30) / 10.0,
            "band": i % 4,
            "spatialextent": BOX, "timestamp": STAMP,
        })
    yield connection
    connection.close()


def _walk(op):
    yield op
    for child in op.children:
        yield from _walk(child)


class TestOrderLimit:
    def test_order_by_descending(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT ndvi FROM raster ORDER BY ndvi DESC")
        values = [row["ndvi"] for row in cur]
        assert values == sorted(values, reverse=True)
        assert len(values) == 30

    def test_order_by_ordinal(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT band, ndvi FROM raster ORDER BY 2 LIMIT 4")
        values = [row["ndvi"] for row in cur]
        assert values == sorted(values)[:4]

    def test_limit_zero_yields_nothing(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT FROM raster LIMIT 0")
        assert cur.fetchall() == []

    def test_limit_with_offset(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT ndvi FROM raster ORDER BY ndvi LIMIT 5 OFFSET 3")
        values = [row["ndvi"] for row in cur]
        cur.execute("SELECT ndvi FROM raster ORDER BY ndvi")
        full = [row["ndvi"] for row in cur]
        assert values == full[3:8]

    def test_order_by_projected_out_attribute(self, conn):
        # The sort runs before the projection, so an ORDER BY key that
        # the select list drops still orders the result.
        cur = conn.cursor()
        cur.execute("SELECT band FROM raster ORDER BY ndvi DESC LIMIT 3")
        rows = cur.fetchall()
        assert [set(row) for row in rows] == [{"band"}] * 3
        cur.execute("SELECT band, ndvi FROM raster ORDER BY ndvi DESC "
                    "LIMIT 3")
        assert [row["band"] for row in cur] == [row["band"] for row in rows]

    def test_whole_objects_with_order(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT FROM raster ORDER BY ndvi LIMIT 2")
        rows = cur.fetchall()
        assert rows[0].class_name == "raster"
        assert rows[0]["ndvi"] <= rows[1]["ndvi"]


class TestAggregates:
    def test_group_by_aggregates(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT band, count(*), avg(ndvi) FROM raster "
                    "GROUP BY band ORDER BY band")
        rows = cur.fetchall()
        assert [row["band"] for row in rows] == [0, 1, 2, 3]
        assert sum(row["count(*)"] for row in rows) == 30

    def test_scalar_aggregate(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT count(*), min(ndvi), max(ndvi), sum(band) "
                    "FROM raster")
        (row,) = cur.fetchall()
        assert row["count(*)"] == 30
        assert row["min(ndvi)"] == 0.0
        assert row["max(ndvi)"] == pytest.approx(2.9)

    def test_aggregate_over_empty_group(self, conn):
        # Predicates reject every stored row: the scalar aggregate still
        # produces its one row, count 0 and NULL-ish everything else.
        cur = conn.cursor()
        cur.execute("SELECT count(*), avg(ndvi) FROM raster "
                    "WHERE band = 999")
        (row,) = cur.fetchall()
        assert row["count(*)"] == 0
        assert row["avg(ndvi)"] is None

    def test_group_by_empty_input_has_no_groups(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT band, count(*) FROM raster WHERE band = 999 "
                    "GROUP BY band")
        assert cur.fetchall() == []

    def test_order_by_aggregate_ordinal(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT band, sum(ndvi) FROM raster GROUP BY band "
                    "ORDER BY 2 DESC LIMIT 2")
        rows = cur.fetchall()
        assert len(rows) == 2
        assert rows[0]["sum(ndvi)"] >= rows[1]["sum(ndvi)"]

    def test_non_aggregated_item_rejected(self, conn):
        with pytest.raises(PlanningError):
            conn.execute("SELECT ndvi, count(*) FROM raster GROUP BY band")

    def test_bad_ordinal_rejected(self, conn):
        with pytest.raises(PlanningError):
            conn.execute("SELECT band FROM raster ORDER BY 7")


class TestExpressionProjection:
    def test_registered_operator_in_projection(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT area(spatialextent) FROM raster LIMIT 1")
        (row,) = cur.fetchall()
        assert row["area(spatialextent)"] == pytest.approx(100.0)

    def test_operator_inside_aggregate(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT sum(area(spatialextent)) FROM raster")
        (row,) = cur.fetchall()
        assert row["sum(area(spatialextent))"] == pytest.approx(3000.0)

    def test_unknown_operator_rejected(self, conn):
        with pytest.raises(PlanningError):
            conn.execute("SELECT frobnicate(ndvi) FROM raster LIMIT 1")

    def test_unknown_attribute_rejected(self, conn):
        with pytest.raises(PlanningError):
            conn.execute("SELECT ghost FROM raster ORDER BY ghost")


class TestJoins:
    def test_join_on_oid(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT region, avg(ndvi) FROM raster "
                    "JOIN scene ON raster.scene = scene.oid "
                    "GROUP BY region ORDER BY region")
        rows = cur.fetchall()
        assert [row["region"] for row in rows] == ["reg0", "reg1", "reg2"]

    def test_join_rows_carry_both_sides(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT raster.ndvi, scene.region FROM raster "
                    "JOIN scene ON raster.scene = scene.oid LIMIT 3")
        for row in cur:
            assert set(row) == {"raster.ndvi", "scene.region"}
            assert row["scene.region"].startswith("reg")

    def test_join_with_right_side_predicate(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT count(*) FROM raster "
                    "JOIN scene ON raster.scene = scene.oid "
                    "WHERE scene.region = 'reg0'")
        (row,) = cur.fetchall()
        assert row["count(*)"] == 10  # 2 of 6 scenes, 5 rasters each

    def test_join_on_attribute_equality(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT count(*) FROM raster "
                    "JOIN scene ON raster.band = scene.sid")
        (row,) = cur.fetchall()
        # bands 0..3 match sids 0..3: 8 rasters per band 0/1, 7 per 2/3
        assert row["count(*)"] == 30

    def test_join_with_concept_side(self, conn):
        cur = conn.cursor()
        cur.execute("DEFINE CONCEPT imagery MEMBERS scene")
        cur.execute("SELECT count(*) FROM raster "
                    "JOIN imagery ON raster.scene = imagery.oid")
        (row,) = cur.fetchall()
        assert row["count(*)"] == 30
        plan = cur.explain("SELECT count(*) FROM raster "
                           "JOIN imagery ON raster.scene = imagery.oid")
        assert "HashJoin" in plan

    def test_self_join_rejected(self, conn):
        with pytest.raises(PlanningError):
            conn.execute("SELECT count(*) FROM raster "
                         "JOIN raster ON raster.scene = raster.band")

    def test_index_nested_loop_join_on_selective_left(self, conn):
        # A tiny left side against an O(1) oid probe should beat
        # hashing a big right relation.
        store = conn.kernel.store
        for i in range(400):
            store.store("scene", {
                "sid": 100 + i, "region": f"bulk{i}",
                "spatialextent": BOX, "timestamp": STAMP,
            })
        cur = conn.cursor()
        plan = cur.explain("SELECT scene.region FROM raster "
                           "JOIN scene ON raster.scene = scene.oid "
                           "WHERE band = 1 AND ndvi < 1.0")
        assert "IndexNestedLoopJoin" in plan
        cur.execute("SELECT scene.region FROM raster "
                    "JOIN scene ON raster.scene = scene.oid "
                    "WHERE band = 1 AND ndvi < 1.0")
        rows = cur.fetchall()
        assert rows and all(r["scene.region"].startswith("reg")
                            for r in rows)


class TestSortAvoidance:
    def test_indexed_order_by_drops_sort_node(self, conn):
        cur = conn.cursor()
        before = cur.explain("SELECT ndvi FROM raster ORDER BY ndvi DESC "
                             "LIMIT 5")
        assert "Sort(" in before
        cur.execute("CREATE INDEX ON raster (ndvi)")
        after = cur.explain("SELECT ndvi FROM raster ORDER BY ndvi DESC "
                            "LIMIT 5")
        assert "(ordered desc)" in after
        # The stored path carries no Sort; only the derive fallback
        # (which the index cannot order) keeps one.
        stored_plan = after.split("Sort(", 1)[0]
        assert "IndexScan" in stored_plan

    def test_ordered_scan_matches_explicit_sort(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT ndvi FROM raster ORDER BY ndvi")
        unindexed = [row["ndvi"] for row in cur]
        cur.execute("CREATE INDEX ON raster (ndvi)")
        cur.execute("SELECT ndvi FROM raster ORDER BY ndvi")
        indexed = [row["ndvi"] for row in cur]
        assert indexed == unindexed

    def test_ordered_scan_respects_range_window(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE INDEX ON raster (ndvi)")
        cur.execute("SELECT ndvi FROM raster WHERE ndvi >= 1.0 "
                    "ORDER BY ndvi DESC LIMIT 4")
        values = [row["ndvi"] for row in cur]
        assert values == sorted(values, reverse=True)
        assert all(v >= 1.0 for v in values)

    def test_create_index_invalidates_cached_plan(self, conn):
        source = "SELECT ndvi FROM raster ORDER BY ndvi LIMIT 3"
        cur = conn.cursor()
        cur.execute(source)
        first = cur.fetchall()
        cur.execute(source)  # warm: served from the plan cache
        assert cur.fetchall() == first
        assert conn.cache_hits >= 1
        invalidations = conn.plan_cache.invalidations
        cur.execute("CREATE INDEX ON raster (ndvi)")
        cur.execute(source)
        assert cur.fetchall() == first
        assert conn.plan_cache.invalidations > invalidations
        assert "(ordered)" in cur.explain(source)


class TestIntrospection:
    def test_show_indexes_surfaces_statistics(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE INDEX ON raster (ndvi)")
        cur.execute("SHOW INDEXES")
        message = cur.results[-1].message
        line = next(l for l in message.splitlines()
                    if "cls_raster(ndvi)" in l)
        assert "entries=30" in line
        assert "distinct_keys=30" in line
        assert "histogram_buckets=" in line

    def test_explain_surfaces_pricing_inputs(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE INDEX ON raster (band)")
        plan = cur.explain("SELECT FROM raster WHERE band = 2")
        assert "distinct_keys=4" in plan
        assert "hist_buckets=" in plan

    def test_prepared_statement_binds_into_algebra(self, conn):
        query = conn.prepare("SELECT band, count(*) FROM raster "
                             "WHERE ndvi >= ? GROUP BY band ORDER BY band")
        cur = conn.cursor()
        cur.execute(query, [2.0])
        strict = sum(row["count(*)"] for row in cur)
        cur.execute(query, [0.0])
        loose = sum(row["count(*)"] for row in cur)
        assert strict < loose == 30

    def test_fallback_sort_is_never_bounded(self, conn):
        # Sort avoidance wraps derive/interpolate fallbacks in a Sort of
        # their own.  That Sort must not be top-K-bounded: the
        # FallbackSwitch applies residual predicates only *after* the
        # fallback runs, so truncating early could drop qualifying rows.
        from repro.query import FallbackSwitch, Sort

        cur = conn.cursor()
        cur.execute("CREATE INDEX ON raster (ndvi)")
        (node,) = conn.optimizer.compile(
            "SELECT FROM raster WHERE band = 1 ORDER BY ndvi LIMIT 2"
        ).nodes
        tree = conn.executor.physical.build(node)
        assert "(ordered)" in "\n".join(
            op.label() for op in _walk(tree)
        )
        fallback_sorts = [
            fallback
            for op in _walk(tree) if isinstance(op, FallbackSwitch)
            for fallback in op.fallbacks if isinstance(fallback, Sort)
        ]
        assert fallback_sorts
        assert all(sort.top_k is None for sort in fallback_sorts)

    def test_oid_pseudo_attribute_projects(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT oid FROM scene ORDER BY oid LIMIT 3")
        rows = cur.fetchall()
        assert [row["oid"] for row in rows] == sorted(
            row["oid"] for row in rows
        )
        # The simple-path fold must not swallow the pseudo-attribute.
        cur.execute("SELECT oid FROM scene")
        assert len(cur.fetchall()) >= 6

    def test_soft_keyword_attribute_in_where(self, conn):
        # 'extent' is a GaeaQL keyword (SPATIAL EXTENT) but a legal
        # attribute name; it must work in WHERE like it does in the
        # select list.
        from repro.core.classes import NonPrimitiveClass

        cur = conn.cursor()
        conn.kernel.derivations.define_class(NonPrimitiveClass(
            name="patch",
            attributes=(("extent", "float8"), ("label", "char16"),
                        ("spatialextent", "box"), ("timestamp", "abstime")),
            spatial_attr="spatialextent", temporal_attr="timestamp",
        ))
        store = conn.kernel.store
        for i in range(4):
            store.store("patch", {
                "extent": float(i), "label": f"p{i}",
                "spatialextent": BOX, "timestamp": STAMP,
            })
        cur.execute("SELECT extent FROM patch WHERE extent >= 2.0 "
                    "ORDER BY extent DESC")
        assert [row["extent"] for row in cur] == [3.0, 2.0]
