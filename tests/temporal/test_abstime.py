"""Tests for absolute time (repro.temporal.abstime)."""

import pytest

from repro.errors import TemporalError, ValueRepresentationError
from repro.temporal import AbsTime


class TestCalendar:
    def test_epoch(self):
        assert AbsTime.from_ymd(1970, 1, 1).days == 0

    def test_known_dates(self):
        assert AbsTime.from_ymd(1970, 1, 2).days == 1
        assert AbsTime.from_ymd(1971, 1, 1).days == 365
        assert AbsTime.from_ymd(1986, 1, 15).days == 5858

    def test_roundtrip_many_dates(self):
        for days in range(-3000, 30000, 137):
            at = AbsTime(days)
            assert AbsTime.from_ymd(*at.to_ymd()).days == days

    def test_leap_years(self):
        assert AbsTime.from_ymd(1992, 2, 29)  # leap
        with pytest.raises(TemporalError):
            AbsTime.from_ymd(1993, 2, 29)
        with pytest.raises(TemporalError):
            AbsTime.from_ymd(1900, 2, 29)  # century, not leap
        assert AbsTime.from_ymd(2000, 2, 29)  # 400-year rule

    def test_bad_month_day(self):
        with pytest.raises(TemporalError):
            AbsTime.from_ymd(1990, 13, 1)
        with pytest.raises(TemporalError):
            AbsTime.from_ymd(1990, 4, 31)

    def test_properties(self):
        at = AbsTime.from_ymd(1986, 1, 15)
        assert (at.year, at.month, at.day) == (1986, 1, 15)


class TestRepresentation:
    def test_parse(self):
        assert AbsTime.parse("1986-01-15") == AbsTime.from_ymd(1986, 1, 15)

    def test_str(self):
        assert str(AbsTime.from_ymd(1986, 1, 5)) == "1986-01-05"

    def test_parse_rejects_garbage(self):
        for bad in ("1986/01/15", "15-01-1986", "1986-1-15", "soon"):
            with pytest.raises(ValueRepresentationError):
                AbsTime.parse(bad)

    def test_parse_rejects_invalid_date(self):
        with pytest.raises(ValueRepresentationError):
            AbsTime.parse("1986-02-30")

    def test_validate_forms(self):
        at = AbsTime.from_ymd(1990, 6, 1)
        assert AbsTime.validate(at) is at
        assert AbsTime.validate("1990-06-01") == at
        assert AbsTime.validate(at.days) == at
        with pytest.raises(ValueRepresentationError):
            AbsTime.validate(1.5)


class TestArithmeticAndOrder:
    def test_ordering(self):
        early = AbsTime.from_ymd(1988, 1, 1)
        late = AbsTime.from_ymd(1989, 1, 1)
        assert early < late
        assert sorted([late, early]) == [early, late]

    def test_plus_days(self):
        at = AbsTime.from_ymd(1988, 12, 31)
        assert str(at.plus_days(1)) == "1989-01-01"
        assert str(at.plus_days(-365)) == "1988-01-01"

    def test_days_between(self):
        a = AbsTime.from_ymd(1988, 1, 1)
        b = AbsTime.from_ymd(1989, 1, 1)
        assert a.days_between(b) == 366  # 1988 is a leap year
        assert b.days_between(a) == -366

    def test_hashable_value_identity(self):
        assert len({AbsTime(5), AbsTime(5), AbsTime(6)}) == 2
