"""Tests for per-class timelines (repro.temporal.timeline)."""

import pytest

from repro.errors import TemporalError
from repro.temporal import AbsTime, Timeline


@pytest.fixture()
def timeline():
    tl = Timeline()
    for days, oid in [(10, 1), (10, 2), (20, 3), (40, 4)]:
        tl.add(AbsTime(days), oid)
    return tl


class TestAddRemove:
    def test_at(self, timeline):
        assert timeline.at(AbsTime(10)) == {1, 2}
        assert timeline.at(AbsTime(99)) == set()

    def test_len_counts_stamps(self, timeline):
        assert len(timeline) == 3

    def test_remove_object(self, timeline):
        timeline.remove(AbsTime(10), 1)
        assert timeline.at(AbsTime(10)) == {2}

    def test_remove_last_object_drops_stamp(self, timeline):
        timeline.remove(AbsTime(20), 3)
        assert AbsTime(20) not in timeline.timestamps()
        assert len(timeline) == 2

    def test_remove_unknown(self, timeline):
        with pytest.raises(TemporalError):
            timeline.remove(AbsTime(10), 99)

    def test_timestamps_sorted(self, timeline):
        assert timeline.timestamps() == [AbsTime(10), AbsTime(20), AbsTime(40)]


class TestBracketing:
    def test_interior_gap(self, timeline):
        assert timeline.bracketing(AbsTime(30)) == (AbsTime(20), AbsTime(40))

    def test_populated_stamp_brackets_itself(self, timeline):
        assert timeline.bracketing(AbsTime(20)) == (AbsTime(20), AbsTime(20))

    def test_before_first(self, timeline):
        assert timeline.bracketing(AbsTime(5)) == (None, AbsTime(10))

    def test_after_last(self, timeline):
        assert timeline.bracketing(AbsTime(50)) == (AbsTime(40), None)

    def test_nearest(self, timeline):
        assert timeline.nearest(AbsTime(12)) == AbsTime(10)
        assert timeline.nearest(AbsTime(31)) == AbsTime(40)
        assert timeline.nearest(AbsTime(30)) == AbsTime(20)  # tie -> earlier
        assert Timeline().nearest(AbsTime(0)) is None


class TestRange:
    def test_in_range(self, timeline):
        assert timeline.in_range(AbsTime(10), AbsTime(20)) == \
            [AbsTime(10), AbsTime(20)]
        assert timeline.in_range(AbsTime(11), AbsTime(19)) == []

    def test_bad_range(self, timeline):
        with pytest.raises(TemporalError):
            timeline.in_range(AbsTime(20), AbsTime(10))
