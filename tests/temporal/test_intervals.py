"""Tests for intervals and Allen relations."""

import pytest

from repro.errors import TemporalError
from repro.temporal import (
    AbsTime,
    AllenRelation,
    Interval,
    allen_relation,
    common_time,
)


def _iv(a: int, b: int) -> Interval:
    return Interval(AbsTime(a), AbsTime(b))


class TestInterval:
    def test_degenerate_rejected(self):
        with pytest.raises(TemporalError):
            _iv(5, 3)

    def test_instant(self):
        inst = Interval.instant(AbsTime(7))
        assert inst.duration_days == 0
        assert inst.contains_time(AbsTime(7))

    def test_from_strings(self):
        iv = Interval.from_strings("1988-01-01", "1989-01-01")
        assert iv.duration_days == 366

    def test_overlap_and_intersection(self):
        assert _iv(0, 10).overlaps(_iv(5, 15))
        assert _iv(0, 10).intersection(_iv(5, 15)) == _iv(5, 10)
        assert _iv(0, 4).intersection(_iv(5, 9)) is None

    def test_union_hull(self):
        assert _iv(0, 2).union_hull(_iv(8, 9)) == _iv(0, 9)


class TestAllenRelations:
    CASES = [
        (_iv(0, 2), _iv(5, 8), AllenRelation.BEFORE),
        (_iv(5, 8), _iv(0, 2), AllenRelation.AFTER),
        (_iv(0, 5), _iv(5, 8), AllenRelation.MEETS),
        (_iv(5, 8), _iv(0, 5), AllenRelation.MET_BY),
        (_iv(0, 6), _iv(4, 9), AllenRelation.OVERLAPS),
        (_iv(4, 9), _iv(0, 6), AllenRelation.OVERLAPPED_BY),
        (_iv(0, 4), _iv(0, 9), AllenRelation.STARTS),
        (_iv(0, 9), _iv(0, 4), AllenRelation.STARTED_BY),
        (_iv(3, 6), _iv(0, 9), AllenRelation.DURING),
        (_iv(0, 9), _iv(3, 6), AllenRelation.CONTAINS),
        (_iv(5, 9), _iv(0, 9), AllenRelation.FINISHES),
        (_iv(0, 9), _iv(5, 9), AllenRelation.FINISHED_BY),
        (_iv(2, 7), _iv(2, 7), AllenRelation.EQUAL),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_all_thirteen(self, a, b, expected):
        assert allen_relation(a, b) is expected

    def test_relations_partition(self):
        """Every pair of intervals gets exactly one relation (spot check)."""
        intervals = [_iv(a, b) for a in range(0, 6, 2) for b in range(a, 8, 3)]
        for a in intervals:
            for b in intervals:
                assert allen_relation(a, b) in AllenRelation


class TestCommonTime:
    def test_empty_and_single(self):
        assert common_time([])
        assert common_time([AbsTime(3)])

    def test_identical_stamps(self):
        assert common_time([AbsTime(3)] * 4)

    def test_different_stamps_fail_at_zero_tolerance(self):
        assert not common_time([AbsTime(3), AbsTime(4)])

    def test_tolerance_window(self):
        stamps = [AbsTime(10), AbsTime(12), AbsTime(13)]
        assert common_time(stamps, tolerance_days=3)
        assert not common_time(stamps, tolerance_days=2)
