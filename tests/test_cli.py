"""Tests for the GaeaQL command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main

SCRIPT = """
DEFINE CLASS probe (
  ATTRIBUTES: tag = char16;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
SHOW CLASSES
"""


class TestScriptMode:
    def test_runs_script(self, tmp_path, capsys):
        script = tmp_path / "setup.gql"
        script.write_text(SCRIPT)
        assert main([str(script)]) == 0
        out = capsys.readouterr().out
        assert "class probe defined" in out
        assert "CLASS probe" in out

    def test_script_error_exit_code(self, tmp_path, capsys):
        script = tmp_path / "bad.gql"
        script.write_text("SELECT FROM no_such_class")
        assert main([str(script)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_missing_script(self, capsys):
        assert main(["/nonexistent/path.gql"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestCheckpointFlow:
    def test_save_then_load(self, tmp_path, capsys):
        script = tmp_path / "setup.gql"
        script.write_text(SCRIPT)
        ckpt = tmp_path / "db.ckpt"
        assert main([str(script), "--save", str(ckpt)]) == 0
        assert ckpt.exists()

        probe = tmp_path / "probe.gql"
        probe.write_text("SHOW CLASSES")
        assert main(["--checkpoint", str(ckpt), str(probe)]) == 0
        out = capsys.readouterr().out
        assert "CLASS probe" in out

    def test_bad_checkpoint(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_bytes(b"nope")
        assert main(["--checkpoint", str(bogus)]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestREPL:
    def test_repl_executes_buffered_statement(self, monkeypatch, capsys):
        lines = iter(["SHOW TYPES", "", "\\q"])
        monkeypatch.setattr("builtins.input", lambda prompt: next(lines))
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "TYPE image" in out

    def test_repl_quits_on_eof(self, monkeypatch, capsys):
        def raise_eof(prompt):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main([]) == 0
