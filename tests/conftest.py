"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adt import Image, make_standard_registries
from repro.core import open_kernel
from repro.figures import AFRICA, build_figure2, populate_scenes
from repro.gis import SceneGenerator, register_gis_operators
from repro.query import open_session
from repro.spatial import Box
from repro.temporal import AbsTime


@pytest.fixture()
def registries():
    """Fresh (TypeRegistry, OperatorRegistry) with standard content."""
    return make_standard_registries()


@pytest.fixture()
def types(registries):
    return registries[0]


@pytest.fixture()
def operators(registries):
    ops = registries[1]
    register_gis_operators(ops)
    return ops


@pytest.fixture()
def kernel():
    """A fresh kernel with GIS operators, universe = Africa."""
    k = open_kernel(universe=AFRICA)
    register_gis_operators(k.operators)
    return k


@pytest.fixture()
def session():
    """A fresh GaeaQL session."""
    return open_session(universe=AFRICA)


@pytest.fixture()
def small_image():
    """A deterministic 8x8 float4 image."""
    rng = np.random.default_rng(0)
    return Image.from_array(rng.random((8, 8)), "float4")


@pytest.fixture()
def scene_generator():
    """A small deterministic scene generator."""
    return SceneGenerator(seed=99, nrow=16, ncol=16)


@pytest.fixture()
def figure2_catalog():
    """The Figure-2 catalog with two years of synthetic scenes."""
    catalog = build_figure2()
    populate_scenes(catalog, seed=13, size=16, years=(1988, 1989))
    return catalog


@pytest.fixture()
def africa_box():
    return AFRICA


@pytest.fixture()
def jan_1986():
    return AbsTime.from_ymd(1986, 1, 15)


@pytest.fixture()
def unit_box():
    return Box(0.0, 0.0, 1.0, 1.0)
