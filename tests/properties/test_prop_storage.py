"""Property-based tests: storage-engine visibility and recovery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adt import make_standard_registries
from repro.storage import StorageEngine


def _fresh_engine():
    types, _ = make_standard_registries()
    engine = StorageEngine(types=types)
    engine.create_relation("t", [("k", "int4"), ("v", "char16")])
    return engine, types

# Operation stream: (action, key) — begin/insert/commit/abort cycles.
_SCRIPTS = st.lists(
    st.tuples(st.sampled_from(["committed", "aborted"]),
              st.lists(st.integers(0, 50), min_size=0, max_size=5)),
    max_size=20,
)


class TestVisibilityProperties:
    @given(script=_SCRIPTS)
    @settings(max_examples=60, deadline=None)
    def test_only_committed_rows_visible(self, script):
        engine, _ = _fresh_engine()
        expected = []
        for outcome, keys in script:
            tx = engine.begin()
            for key in keys:
                engine.insert("t", (key, f"v{key}"), tx)
            if outcome == "committed":
                engine.commit(tx)
                expected.extend(keys)
            else:
                engine.abort(tx)
        got = sorted(row["k"] for row in engine.scan("t"))
        assert got == sorted(expected)

    @given(script=_SCRIPTS)
    @settings(max_examples=40, deadline=None)
    def test_recovery_equals_live_state(self, script):
        engine, types = _fresh_engine()
        for outcome, keys in script:
            tx = engine.begin()
            for key in keys:
                engine.insert("t", (key, f"v{key}"), tx)
            if outcome == "committed":
                engine.commit(tx)
            else:
                engine.abort(tx)
        live = sorted(row["k"] for row in engine.scan("t"))
        recovered = StorageEngine.recover(engine.wal, types)
        replayed = sorted(row["k"] for row in recovered.scan("t"))
        assert replayed == live

    @given(keys=st.lists(st.integers(0, 30), min_size=1, max_size=40),
           delete_positions=st.sets(st.integers(0, 39)))
    @settings(max_examples=40, deadline=None)
    def test_delete_recovery(self, keys, delete_positions):
        engine, types = _fresh_engine()
        tids = [engine.insert_row("t", (key, "x")) for key in keys]
        surviving = []
        for position, (key, tid) in enumerate(zip(keys, tids)):
            if position in delete_positions:
                engine.delete_row("t", tid)
            else:
                surviving.append(key)
        recovered = StorageEngine.recover(engine.wal, types)
        got = sorted(row["k"] for row in recovered.scan("t"))
        assert got == sorted(surviving)
