"""Property-based tests: GIS algorithm invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.adt import Image
from repro.gis import (
    composite,
    decompose,
    ndvi,
    ndvi_difference,
    pca,
    spca,
)
from repro.gis.mosaic import covers, mosaic
from repro.spatial import Box

_PIXELS = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8), st.integers(2, 8)),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


@st.composite
def image_pairs(draw):
    """Two same-shaped pixel arrays (shapes drawn once, not filtered)."""
    shape = draw(st.tuples(st.integers(2, 8), st.integers(2, 8)))
    elements = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    a = draw(arrays(dtype=np.float64, shape=shape, elements=elements))
    b = draw(arrays(dtype=np.float64, shape=shape, elements=elements))
    return a, b


def _img(data) -> Image:
    return Image.from_array(np.asarray(data), "float8")


class TestNDVIProperties:
    @given(pair=image_pairs())
    def test_bounded(self, pair):
        red, nir = pair
        out = ndvi(_img(red), _img(nir)).data
        assert float(out.min()) >= -1.0 - 1e-6
        assert float(out.max()) <= 1.0 + 1e-6

    @given(pair=image_pairs())
    def test_antisymmetric_in_band_swap(self, pair):
        red, nir = pair
        forward = ndvi(_img(red), _img(nir)).data
        backward = ndvi(_img(nir), _img(red)).data
        assert np.allclose(forward, -backward, atol=1e-5)

    @given(pair=image_pairs())
    def test_difference_antisymmetric(self, pair):
        a, b = pair
        d1 = ndvi_difference(_img(a), _img(b)).data
        d2 = ndvi_difference(_img(b), _img(a)).data
        assert np.allclose(d1, -d2, atol=1e-5)


class TestCompositeProperties:
    @given(data=_PIXELS, n=st.integers(1, 5))
    def test_roundtrip(self, data, n):
        bands = [_img(data + i * 0.01) for i in range(n)]
        back = decompose(composite(bands), n)
        for original, recovered in zip(bands, back):
            assert np.allclose(original.data, recovered.data, atol=1e-6)


class TestPCAProperties:
    @given(data=_PIXELS, n=st.integers(2, 4))
    @settings(max_examples=30)
    def test_eigenvalues_sorted_nonnegative(self, data, n):
        rng = np.random.default_rng(0)
        images = [_img(np.clip(data + rng.normal(scale=0.1, size=data.shape),
                               0, 1)) for _ in range(n)]
        _, eigenvalues = pca(images, ncomp=n)
        assert all(eigenvalues[i] >= eigenvalues[i + 1] - 1e-9
                   for i in range(n - 1))
        assert all(v >= -1e-9 for v in eigenvalues)

    @given(data=_PIXELS)
    @settings(max_examples=20)
    def test_spca_invariant_to_scaling(self, data):
        """Standardized PCA ignores per-scene gain: scaling one input by
        a constant leaves the component image unchanged."""
        assume(float(np.std(data)) > 1e-3)
        rng = np.random.default_rng(1)
        other = np.clip(data + rng.normal(scale=0.2, size=data.shape), 0, 1)
        assume(float(np.std(other)) > 1e-3)
        base, _ = spca([_img(data), _img(other)], 1)
        scaled, _ = spca([_img(data * 10.0), _img(other)], 1)
        assert np.allclose(base[0].data, scaled[0].data, atol=1e-6)


class TestMosaicProperties:
    @given(
        split=st.floats(min_value=0.3, max_value=0.7),
        value_a=st.floats(min_value=0.0, max_value=10.0),
        value_b=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_two_tile_partition_always_covers(self, split, value_a, value_b):
        left = Box(0.0, 0.0, 10.0 * split + 1.0, 10.0)
        right = Box(10.0 * split - 1.0, 0.0, 10.0, 10.0)
        region = Box(1.0, 1.0, 9.0, 9.0)
        assert covers([left, right], region)
        out = mosaic(
            [(_img(np.full((8, 8), value_a)), left),
             (_img(np.full((8, 8), value_b)), right)],
            region,
        )
        lo, hi = sorted((value_a, value_b))
        assert float(out.data.min()) >= lo - 1e-4
        assert float(out.data.max()) <= hi + 1e-4

    @given(value=st.floats(min_value=-5.0, max_value=5.0))
    def test_constant_tiles_constant_mosaic(self, value):
        pieces = [
            (_img(np.full((4, 4), value)), Box(0, 0, 6, 10)),
            (_img(np.full((4, 4), value)), Box(4, 0, 10, 10)),
        ]
        out = mosaic(pieces, Box(1, 1, 9, 9))
        assert np.allclose(out.data, value, atol=1e-5)
