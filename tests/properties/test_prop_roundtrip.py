"""Property-based round-trip tests: rendered definitions re-parse.

``Process.describe()`` emits the paper's DEFINE PROCESS syntax and
``NonPrimitiveClass.describe()`` the CLASS syntax; both must re-parse to
equivalent definitions — the textual form is the sharing medium the
paper's scenario depends on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnyOf,
    Apply,
    Argument,
    AttrRef,
    CardinalityAssertion,
    CommonSpatialAssertion,
    CommonTemporalAssertion,
    Literal,
    NonPrimitiveClass,
    ParamRef,
    Process,
)
from repro.query import parse_statement
from repro.query.ast import DefineClass, DefineProcess
from repro.query.tokens import KEYWORDS

# GaeaQL reserves its keywords (AT, IN, CARD, ...), like any SQL-family
# language; generated names must avoid them.
_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)
_SCALARS = st.sampled_from(["int4", "float4", "char16", "image"])


@st.composite
def classes(draw):
    name = draw(_IDENT)
    n_attrs = draw(st.integers(1, 5))
    attr_names = draw(st.lists(_IDENT, min_size=n_attrs, max_size=n_attrs,
                               unique=True))
    attributes = [(a, draw(_SCALARS)) for a in attr_names]
    has_spatial = draw(st.booleans())
    has_temporal = draw(st.booleans())
    if has_spatial:
        attributes.append(("spatialextent", "box"))
    if has_temporal:
        attributes.append(("timestamp", "abstime"))
    derived = draw(st.none() | _IDENT)
    return NonPrimitiveClass(
        name=name,
        attributes=tuple(attributes),
        spatial_attr="spatialextent" if has_spatial else None,
        temporal_attr="timestamp" if has_temporal else None,
        derived_by=derived,
    )


@st.composite
def processes(draw):
    arg = draw(_IDENT)
    out = draw(_IDENT.filter(lambda s: s != arg))
    attrs = draw(st.lists(_IDENT, min_size=1, max_size=4, unique=True))
    is_set = draw(st.booleans())
    assertions = []
    if is_set and draw(st.booleans()):
        assertions.append(CardinalityAssertion(
            arg=arg, count=draw(st.integers(1, 5)),
            exact=draw(st.booleans()),
        ))
    if draw(st.booleans()):
        assertions.append(CommonSpatialAssertion(arg=arg))
    if draw(st.booleans()):
        assertions.append(CommonTemporalAssertion(arg=arg))
    mappings = {}
    for attr in attrs:
        kind = draw(st.integers(0, 3))
        if kind == 0:
            mappings[attr] = Literal(draw(st.integers(-100, 100)))
        elif kind == 1:
            mappings[attr] = AttrRef(arg, draw(_IDENT))
        elif kind == 2:
            mappings[attr] = AnyOf(AttrRef(arg, draw(_IDENT)))
        else:
            mappings[attr] = Apply(
                draw(_IDENT), (AttrRef(arg, draw(_IDENT)),
                               ParamRef(draw(_IDENT)))
            )
    return Process(
        name=draw(_IDENT),
        output_class=out,
        arguments=(Argument(name=arg, class_name=draw(_IDENT),
                            is_set=is_set,
                            min_cardinality=draw(st.integers(1, 4))
                            if is_set else 1),),
        assertions=tuple(assertions),
        mappings=mappings,
        parameters={draw(_IDENT): draw(st.integers(0, 10))}
        if draw(st.booleans()) else {},
    )


class TestDescribeParseRoundtrip:
    @given(cls=classes())
    @settings(max_examples=80)
    def test_class_roundtrip(self, cls):
        stmt = parse_statement(cls.describe())
        assert isinstance(stmt, DefineClass)
        assert stmt.name == cls.name
        assert set(stmt.attributes) == set(cls.attributes)
        assert stmt.spatial_attr == cls.spatial_attr
        assert stmt.temporal_attr == cls.temporal_attr
        assert stmt.derived_by == cls.derived_by

    @given(process=processes())
    @settings(max_examples=80)
    def test_process_roundtrip(self, process):
        stmt = parse_statement(process.describe())
        assert isinstance(stmt, DefineProcess)
        assert stmt.name == process.name
        assert stmt.output_class == process.output_class
        [arg_spec] = stmt.arguments
        [arg] = process.arguments
        assert arg_spec.name == arg.name
        assert arg_spec.is_set == arg.is_set
        assert dict(stmt.mappings) == process.mappings
        assert stmt.assertions == process.assertions
        assert dict(stmt.parameters) == process.parameters
