"""Property-based tests: calendar and Allen-relation invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import (
    AbsTime,
    AllenRelation,
    Interval,
    Timeline,
    allen_relation,
)

_DAYS = st.integers(min_value=-100_000, max_value=100_000)


@st.composite
def intervals(draw):
    a = draw(_DAYS)
    b = draw(_DAYS)
    lo, hi = sorted((a, b))
    return Interval(AbsTime(lo), AbsTime(hi))


_INVERSE = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
}


class TestCalendar:
    @given(days=_DAYS)
    def test_ymd_roundtrip(self, days):
        at = AbsTime(days)
        assert AbsTime.from_ymd(*at.to_ymd()) == at

    @given(days=_DAYS)
    def test_str_parse_roundtrip(self, days):
        at = AbsTime(days)
        if days >= -719468:  # parse requires 4-digit non-negative years
            year = at.to_ymd()[0]
            if 0 <= year <= 9999:
                assert AbsTime.parse(str(at)) == at

    @given(days=_DAYS, delta=st.integers(-10_000, 10_000))
    def test_plus_days_consistent(self, days, delta):
        at = AbsTime(days)
        assert at.days_between(at.plus_days(delta)) == delta


class TestAllen:
    @given(a=intervals(), b=intervals())
    def test_relation_total_and_inverse(self, a, b):
        rel_ab = allen_relation(a, b)
        rel_ba = allen_relation(b, a)
        assert rel_ba is _INVERSE[rel_ab]

    @given(a=intervals(), b=intervals())
    def test_overlap_consistency(self, a, b):
        disjoint = allen_relation(a, b) in (AllenRelation.BEFORE,
                                            AllenRelation.AFTER)
        assert a.overlaps(b) == (not disjoint)

    @given(a=intervals(), b=intervals())
    def test_intersection_inside_hull(self, a, b):
        hull = a.union_hull(b)
        inter = a.intersection(b)
        if inter is not None:
            assert hull.start <= inter.start and inter.end <= hull.end


class TestTimelineProperty:
    @given(entries=st.lists(st.tuples(_DAYS, st.integers(0, 20)),
                            min_size=1, max_size=60),
           probe=_DAYS)
    def test_bracketing_is_tight(self, entries, probe):
        timeline = Timeline()
        for day, oid in entries:
            timeline.add(AbsTime(day), oid)
        before, after = timeline.bracketing(AbsTime(probe))
        stamps = sorted({day for day, _ in entries})
        earlier = [d for d in stamps if d <= probe]
        later = [d for d in stamps if d >= probe]
        assert (before.days if before else None) == \
            (max(earlier) if earlier else None)
        assert (after.days if after else None) == \
            (min(later) if later else None)
