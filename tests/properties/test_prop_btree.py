"""Property-based tests: the B-tree behaves like a sorted multimap."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BTree

_KEYS = st.integers(min_value=-1000, max_value=1000)
_OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), _KEYS,
              st.integers(min_value=0, max_value=5)),
    max_size=200,
)


class TestBTreeModel:
    @given(pairs=st.lists(st.tuples(_KEYS, st.integers(0, 50)), max_size=300))
    def test_matches_dict_model(self, pairs):
        tree = BTree(order=6)
        model: dict[int, set[int]] = defaultdict(set)
        for key, entry in pairs:
            tree.insert(key, entry)
            model[key].add(entry)
        for key, entries in model.items():
            assert tree.search(key) == entries
        assert len(tree) == sum(len(v) for v in model.values())

    @given(keys=st.lists(_KEYS, unique=True, max_size=300))
    def test_keys_always_sorted(self, keys):
        tree = BTree(order=4)
        for key in keys:
            tree.insert(key, "e")
        assert tree.keys() == sorted(keys)

    @given(keys=st.lists(_KEYS, unique=True, min_size=1, max_size=200),
           lo=_KEYS, hi=_KEYS)
    def test_range_scan_matches_filter(self, keys, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        tree = BTree(order=5)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(lo, hi)]
        assert got == sorted(k for k in keys if lo <= k <= hi)

    @given(ops=_OPS)
    @settings(max_examples=50)
    def test_insert_delete_interleaving(self, ops):
        tree = BTree(order=4)
        model: dict[int, set[int]] = defaultdict(set)
        for op, key, entry in ops:
            if op == "insert":
                tree.insert(key, entry)
                model[key].add(entry)
            elif entry in model.get(key, set()):
                tree.delete(key, entry)
                model[key].discard(entry)
        for key in {k for _, k, _ in ops}:
            assert tree.search(key) == model.get(key, set())
