"""Property-based tests: MVCC snapshots see exactly what ``visible()``
promises.

Hypothesis generates arbitrary interleavings of begin / insert / delete /
commit / abort against a real :class:`StorageEngine`, alongside a plain
Python model of the same history.  After every step, snapshots taken from
arbitrary vantage points (no transaction, each in-flight transaction) must
see exactly the model's predicted row set — no phantom from an aborted or
in-flight writer, no missing committed row.

A second suite replays generated histories with the writer on one thread
and a pool of readers snapshotting concurrently: every observed result
set must equal the model's prediction for *some* prefix of the committed
history (snapshot atomicity — a reader may be early or late, never torn).
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adt import make_standard_registries
from repro.storage import StorageEngine
from repro.storage.transactions import visible

_RELATION = "t"


def _engine():
    engine = StorageEngine(types=make_standard_registries()[0])
    engine.create_relation(_RELATION, [("k", "int4")])
    return engine


class _Model:
    """The oracle: tuple versions plus transaction statuses, in pure
    Python, updated in lockstep with the engine."""

    def __init__(self):
        self.versions = []  # (key, xmin, xmax | None) in insert order
        self.committed: set[int] = set()
        self.active: list[int] = []

    def predict(self, committed: set[int], own: int | None) -> list[int]:
        """Keys a snapshot with *committed* (+ *own*) must see, sorted."""
        def sees(xid):
            return xid in committed or xid == own
        return sorted(
            key for key, xmin, xmax in self.versions
            if sees(xmin) and not (xmax is not None and sees(xmax))
        )


# Opcodes reference transactions/versions by index modulo the live count,
# so every generated sequence is valid by construction.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["begin", "insert", "delete", "commit", "abort"]),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1, max_size=60,
)


def _apply(engine, model, txs, tids, op, arg) -> None:
    """One step on both the engine and the model (no-op when illegal)."""
    if op == "begin":
        tx = engine.begin()
        txs[tx.xid] = tx
        model.active.append(tx.xid)
        return
    if not model.active:
        return
    xid = model.active[arg % len(model.active)]
    tx = txs[xid]
    if op == "insert":
        key = len(model.versions)
        tid = engine.insert(_RELATION, (key,), tx)
        tids.append(tid)
        model.versions.append([key, xid, None])
    elif op == "delete":
        undeleted = [i for i, (_k, _x, xmax) in enumerate(model.versions)
                     if xmax is None]
        if not undeleted:
            return
        victim = undeleted[arg % len(undeleted)]
        engine.delete(_RELATION, tids[victim], tx)
        model.versions[victim][2] = xid
    elif op == "commit":
        engine.commit(tx)
        model.active.remove(xid)
        model.committed.add(xid)
    elif op == "abort":
        engine.abort(tx)
        model.active.remove(xid)


def _seen_keys(engine, snapshot) -> list[int]:
    return sorted(row["k"] for row in engine.scan(_RELATION, snapshot))


class TestSequentialVisibility:
    @settings(deadline=None, max_examples=60)
    @given(ops=_OPS)
    def test_snapshots_match_model_after_every_step(self, ops):
        engine = _engine()
        model = _Model()
        txs, tids = {}, []
        for op, arg in ops:
            _apply(engine, model, txs, tids, op, arg)
            # A bystander snapshot: exactly the committed set.
            assert _seen_keys(engine, engine.snapshot()) == \
                model.predict(model.committed, None)
            # Every in-flight writer additionally sees its own work.
            for xid in model.active:
                snap = engine.snapshot(txs[xid])
                assert _seen_keys(engine, snap) == \
                    model.predict(model.committed, xid)

    @settings(deadline=None, max_examples=60)
    @given(ops=_OPS)
    def test_snapshot_is_frozen_at_begin(self, ops):
        """A snapshot taken early never changes meaning: replaying the
        visibility check later (after more commits) yields the same rows,
        because Snapshot.committed is a frozen set, not a live view."""
        engine = _engine()
        model = _Model()
        txs, tids = {}, []
        early = engine.snapshot()
        early_prediction = model.predict(set(early.committed), None)
        for op, arg in ops:
            _apply(engine, model, txs, tids, op, arg)
            assert _seen_keys(engine, early) == early_prediction

    @settings(deadline=None, max_examples=40)
    @given(ops=_OPS)
    def test_visible_agrees_with_scan(self, ops):
        """engine.scan is exactly heap-order filtering by visible()."""
        engine = _engine()
        model = _Model()
        txs, tids = {}, []
        for op, arg in ops:
            _apply(engine, model, txs, tids, op, arg)
        snap = engine.snapshot()
        state = engine._state(_RELATION)
        expected = [version.values[0]
                    for _tid, version in state.heap.scan()
                    if visible(version, snap)]
        assert [row["k"] for row in engine.scan(_RELATION, snap)] == expected


class TestThreadedVisibility:
    """The writer replays a generated history on one thread while reader
    threads snapshot+scan concurrently.  Without interleaving control,
    the checkable property is snapshot atomicity: every observed result
    set equals the model's prediction at one of the committed-set states
    the history passes through."""

    @settings(deadline=None, max_examples=15)
    @given(ops=_OPS)
    def test_concurrent_readers_see_consistent_prefixes(self, ops):
        engine = _engine()
        model = _Model()
        txs, tids = {}, []

        # Precompute every state the committed set passes through, with
        # its predicted visible keys.  The model is replayed up front
        # (the engine is not), so readers can check against it live.
        shadow = _Model()
        legal_results: set[tuple[int, ...]] = {()}
        next_xid = engine.transactions._next_xid
        plan = list(ops)
        for op, arg in plan:
            if op == "begin":
                shadow.active.append(next_xid)
                next_xid += 1
                continue
            if not shadow.active:
                continue
            xid = shadow.active[arg % len(shadow.active)]
            if op == "insert":
                shadow.versions.append([len(shadow.versions), xid, None])
            elif op == "delete":
                undeleted = [i for i, (_k, _x, xmax)
                             in enumerate(shadow.versions) if xmax is None]
                if undeleted:
                    shadow.versions[undeleted[arg % len(undeleted)]][2] = xid
            elif op == "commit":
                shadow.active.remove(xid)
                shadow.committed.add(xid)
                legal_results.add(
                    tuple(shadow.predict(shadow.committed, None))
                )
            elif op == "abort":
                shadow.active.remove(xid)

        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                seen = tuple(_seen_keys(engine, engine.snapshot()))
                if seen not in legal_results:
                    failures.append(f"torn read: {seen}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for op, arg in plan:
                _apply(engine, model, txs, tids, op, arg)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures[0]
        assert tuple(model.predict(model.committed, None)) in legal_results
