"""Property-based equivalence: vectorized execution ≡ scalar execution.

Hypothesis generates small relations (with NULLs) and arbitrary query
shapes over them — equality and range predicates, multi-key ORDER BY
with mixed directions, LIMIT/OFFSET, grouped and scalar aggregates —
and runs each query through both execution modes.  The results must be
*identical*, row for row:

* the ordering contract (stable sort, NULLs last regardless of
  direction, first-seen group emit order) must hold byte-for-byte;
* NULL semantics must match — stored rows are always fully typed (the
  catalog rejects None), so NULLs enter through *missing attributes*:
  concept members with differing schemas, and aggregates over empty
  input;
* float aggregates stay exactly equal because the generated values are
  small multiples of 0.25 — exactly representable, so summation order
  cannot introduce drift.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.figures import AFRICA
from repro.query import open_session
from repro.query.batch import scalar_execution

DDL = """
DEFINE CLASS obs (
  ATTRIBUTES: k = int4; v = float8; tag = char16;
)
"""

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=-20, max_value=20).map(lambda n: n * 0.25),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=1, max_size=30,
)

order_strategy = st.lists(
    st.tuples(st.sampled_from(["k", "v", "tag"]), st.booleans()),
    min_size=0, max_size=3, unique_by=lambda kd: kd[0],
)


def _session_with(rows):
    session = open_session(universe=AFRICA)
    session.execute(DDL)
    for k, v, tag in rows:
        session.kernel.store.store("obs", {"k": k, "v": v, "tag": tag})
    return session


def _run(session, query):
    result = session.execute_one(query)
    out = []
    for obj in result.objects:
        if isinstance(obj, dict):
            out.append(tuple(obj.items()))
        else:
            out.append(tuple(sorted(obj.values.items())))
    return out


def _both_modes(session, query):
    vectorized = _run(session, query)
    with scalar_execution():
        scalar = _run(session, query)
    assert vectorized == scalar, query
    return vectorized


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy, order=order_strategy,
       limit=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
       offset=st.integers(min_value=0, max_value=5),
       where_tag=st.one_of(st.none(), st.sampled_from(["a", "b", "zz"])),
       k_bound=st.one_of(st.none(), st.integers(min_value=0, max_value=6)))
def test_retrieval_equivalence(rows, order, limit, offset, where_tag,
                               k_bound):
    session = _session_with(rows)
    clauses = []
    conditions = []
    if where_tag is not None:
        conditions.append(f"tag = '{where_tag}'")
    if k_bound is not None:
        conditions.append(f"k >= {k_bound}")
    if conditions:
        clauses.append("WHERE " + " AND ".join(conditions))
    if order:
        keys = ", ".join(f"{attr} {'DESC' if desc else 'ASC'}"
                         for attr, desc in order)
        clauses.append(f"ORDER BY {keys}")
    if limit is not None:
        clauses.append(f"LIMIT {limit}")
        if offset:
            clauses.append(f"OFFSET {offset}")
    query = "SELECT k, v, tag FROM obs " + " ".join(clauses)
    result = _both_modes(session, query)
    if order and limit is None:
        # the ordering contract itself: NULLs last, directions honoured
        attr, desc = order[0]
        head = [dict(r)[attr] for r in result]
        non_null = [value for value in head if value is not None]
        assert non_null == sorted(non_null, reverse=desc)
        if None in head:
            assert head.index(None) >= len(non_null)


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy,
       group_attr=st.sampled_from(["k", "tag"]),
       where_tag=st.one_of(st.none(), st.sampled_from(["a", "b"])),
       descending=st.booleans(),
       limit=st.one_of(st.none(), st.integers(min_value=1, max_value=4)))
def test_aggregate_equivalence(rows, group_attr, where_tag, descending,
                               limit):
    session = _session_with(rows)
    where = f"WHERE tag = '{where_tag}' " if where_tag else ""
    direction = "DESC" if descending else "ASC"
    tail = f" LIMIT {limit}" if limit is not None else ""
    query = (f"SELECT {group_attr}, count(*), count(v), sum(k), avg(v), "
             f"min(v), max(k) FROM obs {where}"
             f"GROUP BY {group_attr} ORDER BY {group_attr} {direction}"
             f"{tail}")
    _both_modes(session, query)


@settings(max_examples=15, deadline=None)
@given(rows=rows_strategy)
def test_scalar_aggregate_equivalence(rows):
    session = _session_with(rows)
    _both_modes(session,
                "SELECT count(*), count(v), sum(v), avg(v), min(k), "
                "max(v) FROM obs")


@settings(max_examples=15, deadline=None)
@given(rows=rows_strategy,
       limit=st.integers(min_value=0, max_value=6),
       offset=st.integers(min_value=0, max_value=6))
def test_projection_limit_equivalence(rows, limit, offset):
    session = _session_with(rows)
    _both_modes(session,
                f"SELECT k FROM obs ORDER BY oid LIMIT {limit} "
                f"OFFSET {offset}")


MIXED_DDL = """
DEFINE CLASS full_obs ( ATTRIBUTES: k = int4; v = float8; )
DEFINE CLASS bare_obs ( ATTRIBUTES: k = int4; )
DEFINE CONCEPT mixed MEMBERS full_obs, bare_obs
"""


@settings(max_examples=20, deadline=None)
@given(full=st.lists(st.tuples(st.integers(0, 6),
                               st.integers(-20, 20).map(lambda n: n * 0.25)),
                     min_size=1, max_size=12),
       bare=st.lists(st.integers(0, 6), min_size=1, max_size=12),
       descending=st.booleans())
def test_mixed_schema_union_null_ordering(full, bare, descending):
    """A concept over classes with differing schemas reads the missing
    attribute as NULL; ORDER BY must put those rows last in both
    directions, identically in both modes."""
    session = open_session(universe=AFRICA)
    session.execute(MIXED_DDL)
    for k, v in full:
        session.kernel.store.store("full_obs", {"k": k, "v": v})
    for k in bare:
        session.kernel.store.store("bare_obs", {"k": k})
    direction = "DESC" if descending else "ASC"
    result = _both_modes(
        session, f"SELECT k, v FROM mixed ORDER BY v {direction}, k"
    )
    values = [dict(r)["v"] for r in result]
    non_null = [v for v in values if v is not None]
    assert non_null == sorted(non_null, reverse=descending)
    assert values[len(non_null):] == [None] * len(bare)
