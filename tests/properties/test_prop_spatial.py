"""Property-based tests: box algebra invariants."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.spatial import Box, GridIndex, relate, TopoRelation

_COORD = st.floats(min_value=-500, max_value=500, allow_nan=False,
                   allow_infinity=False)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(_COORD), draw(_COORD)))
    y1, y2 = sorted((draw(_COORD), draw(_COORD)))
    return Box(x1, y1, x2, y2)


class TestBoxAlgebra:
    @given(a=boxes(), b=boxes())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(a=boxes(), b=boxes())
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(a=boxes(), b=boxes())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        assume(inter is not None)
        assert a.contains(inter) and b.contains(inter)

    @given(a=boxes(), b=boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(a=boxes())
    def test_self_relations(self, a):
        assert a.contains(a)
        assert a.overlaps(a)
        assert a.intersection(a) == a
        assert relate(a, a) is TopoRelation.EQUAL

    @given(a=boxes(), b=boxes())
    def test_relate_consistent_with_overlap(self, a, b):
        relation = relate(a, b)
        if relation is TopoRelation.DISJOINT:
            assert not a.overlaps(b)
        else:
            assert a.overlaps(b)

    @given(a=boxes(), b=boxes())
    def test_intersection_area_bounded(self, a, b):
        inter = a.intersection(b)
        assume(inter is not None)
        assert inter.area <= min(a.area, b.area) + 1e-9


class TestGridIndexProperty:
    @given(items=st.lists(boxes(), min_size=1, max_size=40), query=boxes())
    def test_query_matches_linear_scan(self, items, query):
        index = GridIndex(universe=Box(-500, -500, 500, 500), nx=8, ny=8)
        for i, box in enumerate(items):
            index.insert(i, box)
        expected = {i for i, box in enumerate(items) if box.overlaps(query)}
        assert index.query(query) == expected
