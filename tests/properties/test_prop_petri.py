"""Property-based tests: derivation-net invariants (paper §2.1.6).

The key soundness/completeness pair:

* every plan returned by :meth:`backward_plan` replays successfully under
  non-consuming semantics and marks the target (soundness);
* :meth:`backward_plan` succeeds exactly when forward closure reaches the
  target (agreement of the two analyses).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DerivationNet
from repro.errors import UnderivableError


@st.composite
def random_nets(draw):
    """A random layered derivation net plus a random initial marking.

    Layered construction (transitions only consume from earlier places)
    keeps nets acyclic-ish while still exercising OR-choices, shared
    subgoals and thresholds; a few back-edges are added to exercise
    cycles.
    """
    n_places = draw(st.integers(2, 10))
    places = [f"p{i}" for i in range(n_places)]
    net = DerivationNet()
    for place in places:
        net.add_place(place)
    n_transitions = draw(st.integers(1, 12))
    for t in range(n_transitions):
        output_idx = draw(st.integers(1, n_places - 1))
        n_inputs = draw(st.integers(1, min(3, output_idx)))
        input_idxs = draw(st.lists(
            st.integers(0, output_idx - 1),
            min_size=n_inputs, max_size=n_inputs, unique=True,
        ))
        inputs = [
            (places[i], draw(st.integers(1, 3))) for i in input_idxs
        ]
        net.add_transition(f"t{t}", inputs, places[output_idx])
    # Occasional back-edge transition (cycle) — must not break planning.
    if draw(st.booleans()) and n_places >= 3:
        net.add_transition("back", [(places[-1], 1)], places[0])
    marking = {
        place: draw(st.integers(0, 3)) for place in places
    }
    target = draw(st.sampled_from(places))
    return net, marking, target


class TestPlannerProperties:
    @given(data=random_nets())
    @settings(max_examples=80)
    def test_plan_soundness(self, data):
        net, marking, target = data
        try:
            plan = net.backward_plan(target, marking)
        except UnderivableError:
            return
        final = net.replay(plan, marking, consuming=False)
        assert final.get(target, 0) > 0
        # Non-consuming: no place ever loses tokens.
        for place, count in marking.items():
            assert final.get(place, 0) >= count

    @given(data=random_nets())
    @settings(max_examples=80)
    def test_backward_agrees_with_forward(self, data):
        net, marking, target = data
        reachable = net.reachable(marking, target)
        try:
            net.backward_plan(target, marking)
            planned = True
        except UnderivableError:
            planned = False
        assert planned == reachable

    @given(data=random_nets())
    @settings(max_examples=60)
    def test_plan_steps_unique(self, data):
        net, marking, target = data
        try:
            plan = net.backward_plan(target, marking)
        except UnderivableError:
            return
        assert len(set(plan.steps)) == len(plan.steps)

    @given(data=random_nets())
    @settings(max_examples=60)
    def test_monotonicity_more_tokens_never_hurt(self, data):
        net, marking, target = data
        richer = {place: count + 1 for place, count in marking.items()}
        if net.reachable(marking, target):
            assert net.reachable(richer, target)

    @given(data=random_nets())
    @settings(max_examples=60)
    def test_initial_marking_sufficient(self, data):
        """The paper's 'find the initial marking' answer really leads to
        the final marking: planning again from just those places works."""
        net, marking, target = data
        try:
            needed = net.initial_marking_for(target, marking)
        except UnderivableError:
            return
        plan = net.backward_plan(target, dict(needed))
        final = net.replay(plan, dict(needed), consuming=False)
        assert final.get(target, 0) > 0
