"""Tests for the synthetic scene generator."""

import numpy as np
import pytest

from repro.errors import GaeaError
from repro.gis import COVER_CLASSES, SceneGenerator, TM_BAND_NAMES


class TestDeterminism:
    def test_same_seed_same_scene(self):
        a = SceneGenerator(seed=5, nrow=16, ncol=16)
        b = SceneGenerator(seed=5, nrow=16, ncol=16)
        img_a = a.band("africa", 1988, 7, "nir")
        img_b = b.band("africa", 1988, 7, "nir")
        assert img_a == img_b

    def test_different_seed_differs(self):
        a = SceneGenerator(seed=5, nrow=16, ncol=16)
        b = SceneGenerator(seed=6, nrow=16, ncol=16)
        assert a.band("africa", 1988, 7, "nir") != \
            b.band("africa", 1988, 7, "nir")

    def test_different_region_differs(self, scene_generator):
        assert scene_generator.band("africa", 1988, 7, "nir") != \
            scene_generator.band("amazon", 1988, 7, "nir")


class TestLandCover:
    def test_every_class_appears(self, scene_generator):
        field = scene_generator.land_cover("africa")
        for name in scene_generator.classes:
            assert field.fraction(name) > 0.0

    def test_fractions_sum_to_one(self, scene_generator):
        field = scene_generator.land_cover("africa")
        total = sum(field.fraction(n) for n in scene_generator.classes)
        assert total == pytest.approx(1.0)

    def test_unknown_class_rejected(self, scene_generator):
        with pytest.raises(GaeaError):
            scene_generator.land_cover("africa").fraction("tundra")

    def test_patches_are_contiguous(self, scene_generator):
        """Smoothed fields should produce patches, not salt-and-pepper:
        most 4-neighbour pairs agree."""
        labels = scene_generator.land_cover("africa").labels
        horizontal_agree = np.mean(labels[:, 1:] == labels[:, :-1])
        assert horizontal_agree > 0.75


class TestSpectralStructure:
    def test_vegetation_has_red_edge(self):
        gen = SceneGenerator(seed=9, nrow=32, ncol=32,
                             classes=("water", "forest", "desert"))
        field = gen.land_cover("africa")
        red = gen.band("africa", 1988, 7, "red").data.astype(float)
        nir = gen.band("africa", 1988, 7, "nir").data.astype(float)
        forest = field.labels == gen.classes.index("forest")
        ndvi_forest = np.mean(
            (nir[forest] - red[forest]) / (nir[forest] + red[forest] + 1e-9)
        )
        desert = field.labels == gen.classes.index("desert")
        ndvi_desert = np.mean(
            (nir[desert] - red[desert]) / (nir[desert] + red[desert] + 1e-9)
        )
        assert ndvi_forest > 0.4
        assert ndvi_forest > ndvi_desert + 0.3

    def test_unknown_band_rejected(self, scene_generator):
        with pytest.raises(GaeaError):
            scene_generator.band("africa", 1988, 7, "thermal")

    def test_scene_returns_requested_bands(self, scene_generator):
        bands = scene_generator.scene("africa", 1988, 7,
                                      bands=("red", "nir"))
        assert len(bands) == 2

    def test_all_tm_bands_generate(self, scene_generator):
        for band in TM_BAND_NAMES:
            img = scene_generator.band("africa", 1988, 7, band)
            assert 0.0 <= float(img.data.min()) <= float(img.data.max()) <= 1.0

    def test_seasonality_changes_vigor(self, scene_generator):
        january = scene_generator.vegetation_vigor("africa", 1988, 1)
        july = scene_generator.vegetation_vigor("africa", 1988, 7)
        assert abs(float(january.mean()) - float(july.mean())) > 0.1


class TestClimateRasters:
    def test_desert_is_dry(self):
        gen = SceneGenerator(seed=3, nrow=32, ncol=32)
        field = gen.land_cover("africa")
        rain = gen.rainfall("africa", 1988).data.astype(float)
        desert = field.labels == gen.classes.index("desert")
        assert float(rain[desert].mean()) < float(rain[~desert].mean()) - 200

    def test_rainfall_nonnegative(self, scene_generator):
        assert float(scene_generator.rainfall("africa", 1988).data.min()) >= 0

    def test_hot_where_dry(self, scene_generator):
        rain = scene_generator.rainfall("africa", 1988).data.astype(float)
        temp = scene_generator.temperature("africa", 1988).data.astype(float)
        corr = np.corrcoef(rain.ravel(), temp.ravel())[0, 1]
        assert corr < -0.5

    def test_bad_configuration_rejected(self):
        with pytest.raises(GaeaError):
            SceneGenerator(classes=("water", "lava"))
        with pytest.raises(GaeaError):
            SceneGenerator(nrow=1, ncol=10)

    def test_cover_constants_cover_tm_bands(self):
        for signature in COVER_CLASSES.values():
            assert len(signature) == len(TM_BAND_NAMES)
