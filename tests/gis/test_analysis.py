"""Tests for NDVI, compositing, classification and change detection."""

import numpy as np
import pytest

from repro.adt import Image
from repro.errors import SignatureMismatchError
from repro.gis import (
    band_count,
    change_fraction,
    composite,
    confusion_counts,
    decompose,
    kmeans,
    label_changes,
    ndvi,
    ndvi_difference,
    ndvi_ratio,
    superclassify,
    threshold_change,
    unsuperclassify,
)


def _img(array):
    return Image.from_array(np.asarray(array, dtype=float), "float4")


class TestNDVI:
    def test_known_values(self):
        red = _img([[0.1, 0.3]])
        nir = _img([[0.5, 0.3]])
        out = ndvi(red, nir)
        assert out.data[0, 0] == pytest.approx((0.5 - 0.1) / 0.6, abs=1e-6)
        assert out.data[0, 1] == pytest.approx(0.0, abs=1e-6)

    def test_zero_total_pixels(self):
        out = ndvi(_img([[0.0]]), _img([[0.0]]))
        assert out.data[0, 0] == 0.0

    def test_range_bounded(self, scene_generator):
        red = scene_generator.band("africa", 1988, 7, "red")
        nir = scene_generator.band("africa", 1988, 7, "nir")
        out = ndvi(red, nir).data
        assert float(out.min()) >= -1.0 and float(out.max()) <= 1.0

    def test_size_mismatch(self):
        with pytest.raises(SignatureMismatchError):
            ndvi(_img([[1.0]]), _img([[1.0, 2.0]]))

    def test_difference_and_ratio_disagree(self):
        """The §1 scenario: the two change derivations rank pixels
        differently, so derivation metadata is essential."""
        earlier = _img([[0.2, 0.8]])
        later = _img([[0.4, 1.0]])
        diff = ndvi_difference(later, earlier).data
        ratio = ndvi_ratio(later, earlier).data
        # Same absolute change, very different relative change.
        assert diff[0, 0] == pytest.approx(diff[0, 1], abs=1e-6)
        assert ratio[0, 0] > ratio[0, 1]

    def test_ratio_zero_denominator(self):
        out = ndvi_ratio(_img([[0.5]]), _img([[0.0]]))
        assert out.data[0, 0] == 1.0


class TestComposite:
    def test_roundtrip(self):
        bands = [_img(np.full((4, 4), float(i))) for i in range(3)]
        stacked = composite(bands)
        assert stacked.shape == (4, 12)
        recovered = decompose(stacked, 3)
        for original, back in zip(bands, recovered):
            assert np.allclose(original.data, back.data)

    def test_band_count(self):
        bands = [_img(np.zeros((4, 4)))] * 3
        assert band_count(composite(bands), 4, 4) == 3

    def test_empty_rejected(self):
        with pytest.raises(SignatureMismatchError):
            composite([])

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(SignatureMismatchError):
            composite([_img(np.zeros((2, 2))), _img(np.zeros((3, 3)))])

    def test_bad_decompose(self):
        with pytest.raises(SignatureMismatchError):
            decompose(_img(np.zeros((4, 10))), 3)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(50, 2))
        b = rng.normal(5.0, 0.05, size=(50, 2))
        samples = np.vstack([a, b])
        labels, centers = kmeans(samples, 2, seed=1)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]
        assert centers.shape == (2, 2)

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        samples = rng.random((100, 3))
        l1, _ = kmeans(samples, 4, seed=7)
        l2, _ = kmeans(samples, 4, seed=7)
        assert np.array_equal(l1, l2)

    def test_bad_k(self):
        with pytest.raises(SignatureMismatchError):
            kmeans(np.zeros((5, 2)), 6)
        with pytest.raises(SignatureMismatchError):
            kmeans(np.zeros((5, 2)), 0)


class TestClassification:
    def test_unsuperclassify_label_range(self, scene_generator):
        bands = [scene_generator.band("africa", 1988, 7, b)
                 for b in ("red", "nir", "green")]
        labels = unsuperclassify(composite(bands), 5)
        assert labels.pixtype == "int2"
        assert int(labels.data.min()) >= 0
        assert int(labels.data.max()) <= 4

    def test_classification_tracks_land_cover(self):
        """Clusters should align with the latent cover field far better
        than chance."""
        from repro.gis import SceneGenerator

        gen = SceneGenerator(seed=2, nrow=32, ncol=32,
                             classes=("water", "forest", "desert"))
        field = gen.land_cover("africa")
        bands = [gen.band("africa", 1988, 7, b)
                 for b in ("red", "nir", "swir1")]
        labels = unsuperclassify(composite(bands), 3).data
        # Purity: majority latent class per cluster.
        total = 0
        for k in range(3):
            members = field.labels[labels == k]
            if len(members):
                counts = np.bincount(members, minlength=3)
                total += counts.max()
        purity = total / field.labels.size
        assert purity > 0.8

    def test_superclassify(self):
        bands = [_img([[0.0, 1.0]]), _img([[0.0, 1.0]])]
        signatures = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = superclassify(composite(bands), signatures)
        assert labels.data.tolist() == [[0, 1]]

    def test_superclassify_bad_signatures(self):
        with pytest.raises(SignatureMismatchError):
            superclassify(_img(np.zeros((2, 4))), np.zeros(3))


class TestChangeDetection:
    def test_label_changes(self):
        earlier = Image.from_array(np.array([[0, 1], [2, 3]]), "int2")
        later = Image.from_array(np.array([[0, 2], [2, 0]]), "int2")
        mask = label_changes(later, earlier)
        assert mask.data.tolist() == [[0, 1], [0, 1]]
        assert change_fraction(later, earlier) == 0.5

    def test_confusion_counts(self):
        earlier = Image.from_array(np.array([[0, 0, 1]]), "int2")
        later = Image.from_array(np.array([[0, 1, 1]]), "int2")
        counts = confusion_counts(later, earlier, numclass=2)
        assert counts.tolist() == [[1, 1], [0, 1]]

    def test_confusion_rejects_out_of_range(self):
        earlier = Image.from_array(np.array([[5]]), "int2")
        later = Image.from_array(np.array([[0]]), "int2")
        with pytest.raises(SignatureMismatchError):
            confusion_counts(later, earlier, numclass=2)

    def test_threshold_change(self):
        data = np.zeros((10, 10))
        data[5, 5] = 100.0  # one outlier pixel
        mask = threshold_change(_img(data), sigma=2.0)
        assert mask.data[5, 5] == 1
        assert int(mask.data.sum()) == 1

    def test_threshold_change_flat_image(self):
        mask = threshold_change(_img(np.full((4, 4), 3.0)))
        assert int(mask.data.sum()) == 0
