"""Tests for the climate-index operators (desert metrics)."""

import numpy as np
import pytest

from repro.adt import Image
from repro.errors import SignatureMismatchError
from repro.gis import (
    aridity_index,
    desert_mask_aridity,
    desert_mask_rainfall,
    dryness_quotient,
)


def _img(values):
    return Image.from_array(np.asarray(values, dtype=float), "float4")


class TestAridityIndex:
    def test_de_martonne_formula(self):
        rain = _img([[300.0]])
        temp = _img([[20.0]])
        out = aridity_index(rain, temp)
        assert out.data[0, 0] == pytest.approx(10.0)

    def test_lower_is_drier(self):
        rain = _img([[100.0, 1000.0]])
        temp = _img([[25.0, 25.0]])
        out = aridity_index(rain, temp).data
        assert out[0, 0] < out[0, 1]

    def test_size_mismatch(self):
        with pytest.raises(SignatureMismatchError):
            aridity_index(_img([[1.0]]), _img([[1.0, 2.0]]))


class TestDrynessQuotient:
    def test_drier_is_lower(self):
        rain = _img([[100.0, 900.0]])
        temp = _img([[28.0, 28.0]])
        out = dryness_quotient(rain, temp).data
        assert out[0, 0] < out[0, 1]

    def test_positive(self):
        out = dryness_quotient(_img([[500.0]]), _img([[20.0]]))
        assert out.data[0, 0] > 0


class TestDesertMasks:
    def test_rainfall_cutoffs_differ(self):
        rain = _img([[150.0, 220.0, 400.0]])
        at_250 = desert_mask_rainfall(rain, 250.0).data
        at_200 = desert_mask_rainfall(rain, 200.0).data
        assert at_250.tolist() == [[1, 1, 0]]
        assert at_200.tolist() == [[1, 0, 0]]

    def test_aridity_mask(self):
        aridity = _img([[5.0, 30.0]])
        mask = desert_mask_aridity(aridity, 10.0).data
        assert mask.tolist() == [[1, 0]]

    def test_mask_is_char(self):
        mask = desert_mask_rainfall(_img([[100.0]]), 250.0)
        assert mask.pixtype == "char"
