"""Tests for PCA / SPCA and the Figure-4 stage operators."""

import numpy as np
import pytest

from repro.adt import Image, Matrix, Vector
from repro.errors import SignatureMismatchError
from repro.gis import (
    compute_correlation,
    compute_covariance,
    convert_image_matrix,
    convert_matrix_image,
    get_eigen_vector,
    linear_combination,
    pca,
    spca,
)


def _stack(seed=0, n=3, size=8):
    rng = np.random.default_rng(seed)
    return [Image.from_array(rng.random((size, size)), "float4")
            for _ in range(n)]


class TestStageOperators:
    def test_convert_image_matrix(self):
        mats = convert_image_matrix(_stack())
        assert len(mats) == 3 and all(isinstance(m, Matrix) for m in mats)

    def test_convert_rejects_mixed_sizes(self):
        images = [Image.zeros(2, 2), Image.zeros(3, 3)]
        with pytest.raises(SignatureMismatchError):
            convert_image_matrix(images)

    def test_covariance_matches_numpy(self):
        images = _stack()
        cov = compute_covariance(convert_image_matrix(images))
        samples = np.stack([i.data.astype(float).ravel() for i in images],
                           axis=1)
        assert np.allclose(cov.data, np.cov(samples, rowvar=False))

    def test_covariance_needs_two(self):
        with pytest.raises(SignatureMismatchError):
            compute_covariance(convert_image_matrix(_stack(n=1)))

    def test_correlation_unit_diagonal(self):
        corr = compute_correlation(convert_image_matrix(_stack()))
        assert np.allclose(np.diag(corr.data), 1.0)

    def test_eigen_vector_is_principal(self):
        cov = Matrix.from_array([[4.0, 0.0], [0.0, 1.0]])
        vec = get_eigen_vector(cov)
        assert np.allclose(np.abs(vec.data), [1.0, 0.0])

    def test_eigen_vector_sign_normalized(self):
        cov = Matrix.from_array([[2.0, 1.0], [1.0, 2.0]])
        vec = get_eigen_vector(cov)
        assert vec.data[int(np.argmax(np.abs(vec.data)))] > 0

    def test_eigen_vector_component_selection(self):
        cov = Matrix.from_array([[4.0, 0.0], [0.0, 1.0]])
        second = get_eigen_vector(cov, 1)
        assert np.allclose(np.abs(second.data), [0.0, 1.0])
        with pytest.raises(SignatureMismatchError):
            get_eigen_vector(cov, 5)

    def test_linear_combination(self):
        mats = [Matrix.from_array([[1.0]]), Matrix.from_array([[2.0]])]
        out = linear_combination(Vector.from_array([0.5, 0.25]), mats)
        assert len(out) == 1
        assert out[0].data[0, 0] == pytest.approx(1.0)

    def test_linear_combination_length_mismatch(self):
        with pytest.raises(SignatureMismatchError):
            linear_combination(Vector.from_array([1.0]),
                               [Matrix.from_array([[1.0]])] * 2)

    def test_convert_matrix_image(self):
        images = convert_matrix_image([Matrix.from_array([[1.0, 2.0]])])
        assert images[0].pixtype == "float4"


class TestWholeAlgorithms:
    def test_pc1_captures_most_variance(self):
        images = _stack(seed=3)
        _, eigenvalues = pca(images, ncomp=3)
        assert eigenvalues[0] >= eigenvalues[1] >= eigenvalues[2]

    def test_component_count_validated(self):
        with pytest.raises(SignatureMismatchError):
            pca(_stack(), ncomp=9)

    def test_pca_reconstructs_known_structure(self):
        """Two anti-correlated images: PC1 is the difference axis."""
        rng = np.random.default_rng(5)
        base = rng.random((8, 8))
        images = [
            Image.from_array(base, "float4"),
            Image.from_array(1.0 - base, "float4"),
        ]
        _, eigenvalues = pca(images, ncomp=2)
        # Nearly all variance on one axis.
        assert eigenvalues[0] > 50 * max(eigenvalues[1], 1e-12)

    def test_spca_equals_pca_for_standardized_input(self):
        """When inputs already have equal variance, SPCA and PCA loadings
        coincide (up to scale)."""
        rng = np.random.default_rng(7)
        shared = rng.random((8, 8))
        noise = rng.random((8, 8)) * 0.1
        images = [
            Image.from_array((shared - shared.mean()) / shared.std(),
                             "float8"),
            Image.from_array(
                ((shared + noise) - (shared + noise).mean())
                / (shared + noise).std(), "float8"),
        ]
        p, _ = pca(images, 1)
        s, _ = spca(images, 1)
        corr = np.corrcoef(p[0].data.ravel(), s[0].data.ravel())[0, 1]
        assert abs(corr) > 0.999

    def test_spca_downweights_high_variance_scene(self):
        """Eastman's point: a scene with inflated variance dominates PCA
        loadings but not SPCA loadings."""
        rng = np.random.default_rng(11)
        quiet = rng.normal(0.0, 1.0, size=(16, 16))
        loud = rng.normal(0.0, 10.0, size=(16, 16))
        images = [Image.from_array(quiet, "float8"),
                  Image.from_array(loud, "float8")]
        mats = convert_image_matrix(images)
        cov = compute_covariance(mats).data
        corr = compute_correlation(mats).data
        pca_vec = get_eigen_vector(Matrix.from_array(cov)).data
        spca_vec = get_eigen_vector(Matrix.from_array(corr)).data
        # PCA loads almost entirely on the loud scene...
        assert abs(pca_vec[1]) > 0.99
        # ...while SPCA balances the two.
        assert abs(abs(spca_vec[0]) - abs(spca_vec[1])) < 0.2

    def test_deterministic(self):
        images = _stack(seed=13)
        a, _ = pca(images, 2)
        b, _ = pca(images, 2)
        assert a[0] == b[0] and a[1] == b[1]
