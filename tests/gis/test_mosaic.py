"""Tests for spatial mosaicking (repro.gis.mosaic)."""

import numpy as np
import pytest

from repro.adt import Image
from repro.errors import SpatialError
from repro.gis.mosaic import covers, mosaic
from repro.spatial import Box


def _tile(value, size=8):
    return Image.from_array(np.full((size, size), float(value)), "float4")


class TestCovers:
    def test_single_containing_extent(self):
        assert covers([Box(0, 0, 10, 10)], Box(2, 2, 8, 8))

    def test_joint_coverage(self):
        tiles = [Box(0, 0, 6, 10), Box(5, 0, 10, 10)]
        assert covers(tiles, Box(1, 1, 9, 9))

    def test_gap_detected(self):
        tiles = [Box(0, 0, 4, 10), Box(6, 0, 10, 10)]
        assert not covers(tiles, Box(1, 1, 9, 9))

    def test_partial_fails(self):
        assert not covers([Box(0, 0, 5, 5)], Box(0, 0, 10, 10))

    def test_empty_extents(self):
        assert not covers([], Box(0, 0, 1, 1))


class TestMosaic:
    def test_single_piece_passthrough_values(self):
        out = mosaic([(_tile(5.0), Box(0, 0, 10, 10))], Box(2, 2, 8, 8))
        assert np.allclose(out.data, 5.0)

    def test_two_pieces_partition(self):
        out = mosaic(
            [(_tile(1.0), Box(0, 0, 10, 10)), (_tile(3.0), Box(10, 0, 20, 10))],
            Box(5, 0, 15, 10),
        )
        assert float(out.data[:, 0].mean()) == pytest.approx(1.0)
        assert float(out.data[:, -1].mean()) == pytest.approx(3.0)

    def test_overlap_averages(self):
        out = mosaic(
            [(_tile(2.0), Box(0, 0, 10, 10)), (_tile(4.0), Box(0, 0, 10, 10))],
            Box(1, 1, 9, 9),
        )
        assert np.allclose(out.data, 3.0)

    def test_uncovered_cells_rejected(self):
        with pytest.raises(SpatialError):
            mosaic([(_tile(1.0), Box(0, 0, 5, 10))], Box(0, 0, 10, 10))

    def test_no_pieces_rejected(self):
        with pytest.raises(SpatialError):
            mosaic([], Box(0, 0, 1, 1))

    def test_ref_system_mismatch_rejected(self):
        with pytest.raises(SpatialError):
            mosaic(
                [(_tile(1.0), Box(0, 0, 10, 10, ref_system="UTM"))],
                Box(2, 2, 8, 8),
            )

    def test_output_grid_follows_density(self):
        # 8px over 10 units => 0.8 px/unit; a 5-unit region => 4 px.
        out = mosaic([(_tile(1.0), Box(0, 0, 10, 10))], Box(0, 0, 5, 5))
        assert out.shape == (4, 4)

    def test_explicit_grid(self):
        out = mosaic([(_tile(1.0), Box(0, 0, 10, 10))], Box(0, 0, 5, 5),
                     nrow=16, ncol=12)
        assert out.shape == (16, 12)

    def test_gradient_sampling_orientation(self):
        """Row 0 of an image is the *north* edge of its extent."""
        data = np.zeros((4, 4))
        data[0, :] = 9.0  # north edge
        img = Image.from_array(data, "float4")
        out = mosaic([(img, Box(0, 0, 10, 10))], Box(0, 5, 10, 10))
        # Querying the northern half: the top rows carry the 9s.
        assert float(out.data[0].mean()) > float(out.data[-1].mean())
