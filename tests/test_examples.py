"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; a broken example is a doc bug.
Each main() is imported and run with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", _EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} printed nothing"


def test_examples_exist():
    names = {p.stem for p in _EXAMPLES}
    assert {"quickstart", "vegetation_change", "desert_classification",
            "land_change_detection", "interactive_and_mosaic"} <= names
