"""Integration tests: every paper figure regenerates and verifies."""

import numpy as np
import pytest

from repro.gis import pca
from repro.figures import (
    FIGURE3_SOURCE,
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    populate_scenes,
)
from repro.query import parse_statement
from repro.query.ast import DefineProcess


class TestFigure1:
    def test_component_tree_has_paper_boxes(self):
        session = build_figure1()
        tree = session.kernel.component_tree()
        manager = tree["GAEA KERNEL"]["Meta-Data Manager"]
        assert set(manager) == {
            "Data Type/Operator Manager",
            "Derivation Manager",
            "Experiment Manager",
        }

    def test_interpreter_attached(self):
        session = build_figure1()
        assert session.optimizer is not None
        assert session.executor is not None


class TestFigure2:
    @pytest.fixture(scope="class")
    def catalog(self):
        catalog = build_figure2()
        populate_scenes(catalog, size=16)
        return catalog

    def test_all_classes_defined(self, catalog):
        for name in catalog.class_names:
            assert name in catalog.kernel.classes

    def test_all_processes_defined(self, catalog):
        for name in catalog.process_names:
            assert name in catalog.kernel.derivations.processes

    def test_concept_dag_shape(self, catalog):
        concepts = catalog.kernel.concepts
        assert concepts.children("desert") == {
            "hot_trade_wind_desert", "ice_snow_desert"
        }
        assert concepts.parents("landsat_tm") == {"remote_sensing_data"}

    def test_concept_class_mappings_match_paper(self, catalog):
        concepts = catalog.kernel.concepts
        # "the concept of 'hot trade-wind desert' [maps] to the set of
        # (non-primitive) classes {C2, C3, C4, C5}"
        assert concepts.classes_of("hot_trade_wind_desert") == {
            "desert_rain250_c2", "desert_rain200_c3",
            "desert_aridity_c4", "desert_smoothed_c5",
        }
        # "NDVI mapping to the class set {C6}"
        assert concepts.classes_of("ndvi_concept") == {"ndvi_c6"}
        # "Vegetation Change Mapping to the set of classes {C7, C8}"
        assert concepts.classes_of("vegetation_change") == {
            "veg_change_pca_c7", "veg_change_spca_c8",
        }

    def test_derived_classes_name_their_process(self, catalog):
        classes = catalog.kernel.classes
        assert classes.get("land_cover_c20").derived_by == "P20"
        assert classes.get("desert_rain250_c2").derived_by == "P2"
        assert classes.get("landsat_tm_rectified").is_base

    def test_every_concept_member_is_retrievable(self, catalog):
        results = catalog.session.execute("SELECT FROM vegetation_change")
        assert {r.details["class"] for r in results} == {
            "veg_change_pca_c7", "veg_change_spca_c8"
        }
        for result in results:
            assert len(result.objects) >= 1


class TestFigure3:
    def test_source_parses_to_paper_structure(self):
        stmt = parse_statement(FIGURE3_SOURCE)
        assert isinstance(stmt, DefineProcess)
        assert stmt.name == "unsupervised-classification"
        assert len(stmt.assertions) == 3
        assert dict(stmt.mappings)["numclass"].value == 12

    def test_process_executes_on_synthetic_tm(self, scene_generator,
                                              africa_box, jan_1986):
        session = build_figure3()
        for band, image in zip(("red", "nir", "green"),
                               scene_generator.scene("africa", 1986, 1)):
            session.kernel.store.store("landsat_tm_rect", {
                "band": band, "data": image,
                "spatialextent": africa_box, "timestamp": jan_1986,
            })
        result = session.execute_one("SELECT FROM land_cover")
        assert result.path == "derive"
        cover = result.object if hasattr(result, "object") else \
            result.objects[0]
        assert cover["numclass"] == 12
        assert int(cover["data"].data.max()) <= 11

    def test_anyof_transfers_extents_invariantly(self, scene_generator,
                                                 africa_box, jan_1986):
        session = build_figure3()
        for band, image in zip(("red", "nir", "green"),
                               scene_generator.scene("africa", 1986, 1)):
            session.kernel.store.store("landsat_tm_rect", {
                "band": band, "data": image,
                "spatialextent": africa_box, "timestamp": jan_1986,
            })
        result = session.execute_one("SELECT FROM land_cover")
        cover = result.objects[0]
        assert cover["spatialextent"] == africa_box
        assert cover["timestamp"] == jan_1986


class TestFigure4:
    def test_network_shape(self, operators):
        net = build_figure4(operators)
        assert net.input_names == ["images"]
        assert len(net.node_names) == 5
        assert ("to_matrices", "covariance") in net.edges()
        assert ("eigenvector", "combined") in net.edges()

    def test_network_equals_direct_pca(self, operators, scene_generator):
        net = build_figure4(operators)
        images = [scene_generator.band("africa", y, 7, "nir")
                  for y in (1986, 1987, 1988, 1989)]
        network_out = net.execute(images=images)
        direct, _ = pca(images, 1)
        assert np.allclose(network_out[0].data, direct[0].data, atol=1e-5)

    def test_registrable_as_compound_operator(self, operators,
                                              scene_generator):
        net = build_figure4(operators, name="pca_fig4")
        net.as_operator("setof image")
        images = [scene_generator.band("africa", y, 7, "nir")
                  for y in (1986, 1987)]
        out = operators.apply("pca_fig4", images)
        assert len(out) == 1


class TestFigure5:
    def test_compound_end_to_end(self):
        catalog = build_figure2()
        populate_scenes(catalog, size=16, years=(1988, 1989))
        name = build_figure5(catalog)
        kernel = catalog.kernel
        scenes = kernel.store.objects("landsat_tm_rectified")
        early = [o for o in scenes if o["timestamp"].year == 1988]
        late = [o for o in scenes if o["timestamp"].year == 1989]
        result = kernel.derivations.execute_compound(
            name, {"tm_early": early, "tm_late": late}
        )
        assert result.output.class_name == "land_cover_changes_c21"
        lineage = kernel.provenance.lineage(result.output.oid)
        assert lineage.depth == 2
        assert lineage.processes_used() == ["P20", "P20", "P21"]
        # The change mask actually flags change (seasonal signal differs).
        assert float(np.mean(result.output["data"].data)) > 0.0
