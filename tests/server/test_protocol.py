"""Tests for the wire protocol: framing and the value codec."""

import socket
import threading

import numpy as np
import pytest

from repro.adt import Image
from repro.core.classes import SciObject
from repro.errors import GaeaError
from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_value,
    encode_value,
    recv_frame,
    send_frame,
)
from repro.spatial import Box
from repro.temporal import AbsTime


def _roundtrip(value):
    import json
    encoded = encode_value(value)
    json.dumps(encoded)  # must be JSON-representable
    return decode_value(encoded)


class TestValueCodec:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert _roundtrip(value) == value

    def test_numpy_scalars_become_python(self):
        assert _roundtrip(np.int32(7)) == 7
        assert _roundtrip(np.float64(2.5)) == 2.5

    def test_box_roundtrip(self):
        box = Box(-20.0, -35.0, 52.0, 38.0)
        assert _roundtrip(box) == box

    def test_abstime_roundtrip(self):
        stamp = AbsTime.from_ymd(1986, 1, 15)
        assert _roundtrip(stamp) == stamp

    def test_image_roundtrip_preserves_pixels(self):
        array = np.arange(12, dtype=np.int16).reshape(3, 4)
        image = Image.from_array(array, filepath="scene.img")
        back = _roundtrip(image)
        assert back.pixtype == image.pixtype
        assert back.filepath == "scene.img"
        assert np.array_equal(back.data, array)

    def test_sciobject_roundtrip_with_nested_adts(self):
        obj = SciObject(class_name="land_cover", oid=9, values={
            "label": "forest",
            "spatialextent": Box(0, 0, 10, 10),
            "timestamp": AbsTime(days=100),
        })
        back = _roundtrip(obj)
        assert back == obj

    def test_containers_encode_elementwise(self):
        assert _roundtrip([Box(0, 0, 1, 1), AbsTime(1)]) == \
            [Box(0, 0, 1, 1), AbsTime(1)]
        assert _roundtrip({"a": AbsTime(2)}) == {"a": AbsTime(2)}
        assert _roundtrip((1, 2)) == [1, 2]  # tuples arrive as lists

    def test_unknown_types_become_opaque(self):
        class Weird:
            def __repr__(self):
                return "Weird()"
        encoded = encode_value(Weird())
        assert encoded == {"$opaque": {"type": "Weird", "repr": "Weird()"}}
        assert decode_value(encoded) == encoded  # stays tagged, lossy


class TestFraming:
    def _pair(self):
        server, client = socket.socketpair()
        return server, client

    def test_send_recv_roundtrip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "hello", "n": 1})
            assert recv_frame(b) == {"op": "hello", "n": 1}
        finally:
            a.close()
            b.close()

    def test_many_frames_in_order(self):
        a, b = self._pair()
        try:
            done = threading.Event()

            def pump():
                for i in range(50):
                    send_frame(a, {"i": i})
                done.set()

            thread = threading.Thread(target=pump)
            thread.start()
            for i in range(50):
                assert recv_frame(b) == {"i": i}
            thread.join()
            assert done.is_set()
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00\x00\x10abc")  # announces 16, sends 3
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = self._pair()
        try:
            a.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_garbage_body_raises(self):
        a, b = self._pair()
        try:
            body = b"not json"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_protocol_error_is_a_gaea_error(self):
        assert issubclass(ProtocolError, GaeaError)
