"""End-to-end tests for GaeaServer + remote_connect.

Each test starts a real server on an ephemeral port and speaks to it
through :func:`repro.client.remote_connect` — the full wire path:
framing, value codec, per-connection sessions, transactions, and
cross-connection isolation.
"""

import threading

import pytest

from repro.client import remote_connect
from repro.errors import InterfaceError, PlanningError, TransactionError
from repro.server import GaeaServer
from repro.spatial import Box
from repro.temporal import AbsTime

DDL = """
DEFINE CLASS land_cover (
  ATTRIBUTES: label = char16;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""


@pytest.fixture()
def server():
    with GaeaServer() as srv:
        conn = remote_connect(srv.host, srv.port)
        conn.cursor().execute(DDL)
        conn.close()
        yield srv


def _connect(server):
    return remote_connect(server.host, server.port)


def _store(conn, label, x=0.0, day=100):
    return conn.store("land_cover", {
        "label": label,
        "spatialextent": Box(x, 0, x + 5, 5),
        "timestamp": AbsTime(days=day),
    })


class TestBasics:
    def test_hello_reports_version(self, server):
        conn = _connect(server)
        assert conn.server_version
        conn.close()

    def test_execute_store_and_fetch(self, server):
        conn = _connect(server)
        _store(conn, "forest")
        cur = conn.cursor()
        cur.execute("SELECT FROM land_cover WHERE timestamp = ?",
                    [AbsTime(days=100)])
        rows = cur.fetchall()
        assert [row["label"] for row in rows] == ["forest"]
        assert rows[0].class_name == "land_cover"
        assert rows[0]["spatialextent"] == Box(0, 0, 5, 5)
        assert cur.rowcount == 1
        conn.close()

    def test_description_and_results(self, server):
        conn = _connect(server)
        cur = conn.cursor()
        cur.execute("SHOW CLASSES")
        assert any("land_cover" in r["message"] for r in cur.results)
        cur.execute("SELECT FROM land_cover")
        names = [column[0] for column in cur.description]
        assert "label" in names and "timestamp" in names
        conn.close()

    def test_fetchmany_batching_and_iteration(self, server):
        conn = _connect(server)
        for i in range(10):
            _store(conn, f"c{i}", x=float(i))
        cur = conn.cursor()
        cur.execute("SELECT FROM land_cover")
        first = cur.fetchmany(3)
        assert len(first) == 3
        rest = list(cur)
        assert len(first) + len(rest) == 10
        conn.close()

    def test_explain_over_the_wire(self, server):
        conn = _connect(server)
        plan = conn.cursor().explain("SELECT FROM land_cover")
        assert "retrieve land_cover" in plan
        conn.close()

    def test_bind_parameters_with_adts(self, server):
        conn = _connect(server)
        _store(conn, "forest", x=0.0)
        _store(conn, "desert", x=50.0)
        cur = conn.cursor()
        cur.execute(
            "SELECT FROM land_cover WHERE spatialextent OVERLAPS ?",
            [Box(-1.0, -1.0, 6.0, 6.0)],
        )
        assert [row["label"] for row in cur.fetchall()] == ["forest"]
        conn.close()

    def test_server_error_keeps_connection_alive(self, server):
        conn = _connect(server)
        _store(conn, "forest")
        cur = conn.cursor()
        with pytest.raises(PlanningError):
            cur.execute("SELECT FROM no_such_class")
        cur.execute("SELECT FROM land_cover")
        assert len(cur.fetchall()) == 1
        conn.close()

    def test_statements_past_retrieval_deliver_messages_on_drain(self, server):
        conn = _connect(server)
        _store(conn, "forest")
        cur = conn.cursor()
        cur.execute("SELECT FROM land_cover; SHOW CLASSES")
        cur.fetchall()
        assert any("CLASS land_cover" in r["message"] for r in cur.results)
        conn.close()

    def test_closed_connection_rejects_use(self, server):
        conn = _connect(server)
        conn.close()
        with pytest.raises(InterfaceError):
            conn.cursor()


class TestTransactions:
    def test_rollback_discards_stores(self, server):
        conn = _connect(server)
        _store(conn, "keeper")  # committed baseline
        conn.begin()
        _store(conn, "doomed")
        conn.rollback()
        cur = conn.cursor()
        cur.execute("SELECT FROM land_cover")
        assert [row["label"] for row in cur.fetchall()] == ["keeper"]
        conn.close()

    def test_commit_publishes_to_other_connections(self, server):
        writer, reader = _connect(server), _connect(server)
        _store(writer, "base")  # committed baseline
        writer.begin()
        _store(writer, "forest", x=20.0)
        cur = reader.cursor()
        cur.execute("SELECT FROM land_cover")
        assert len(cur.fetchall()) == 1  # uncommitted: invisible elsewhere
        writer.commit()
        cur.execute("SELECT FROM land_cover")
        assert len(cur.fetchall()) == 2
        writer.close()
        reader.close()

    def test_single_writer_across_connections(self, server):
        first, second = _connect(server), _connect(server)
        first.begin()
        with pytest.raises(TransactionError):
            second.begin()
        first.rollback()
        second.begin()  # the write slot freed up
        second.rollback()
        first.close()
        second.close()

    def test_read_only_transactions_run_concurrently(self, server):
        writer, reader = _connect(server), _connect(server)
        _store(writer, "forest")
        reader.begin(read_only=True)  # pin: sees exactly one object
        writer.begin()
        _store(writer, "water", x=20.0)
        writer.commit()
        cur = reader.cursor()
        cur.execute("SELECT FROM land_cover")
        assert len(cur.fetchall()) == 1  # frozen view
        reader.commit()
        cur.execute("SELECT FROM land_cover")
        assert len(cur.fetchall()) == 2  # released: current state
        writer.close()
        reader.close()

    def test_dead_connection_rolls_back_without_disturbing_others(
            self, server):
        doomed, bystander = _connect(server), _connect(server)
        _store(doomed, "base")  # committed baseline
        bystander.begin(read_only=True)
        doomed.begin()
        _store(doomed, "doomed")
        # Abrupt socket death mid-transaction (no close op, no rollback).
        doomed._sock.close()
        doomed._closed = True
        # The server must notice, roll back, and free the writer slot.
        deadline = threading.Event()
        for _ in range(100):
            try:
                bystander2 = _connect(server)
                bystander2.begin()
                bystander2.rollback()
                bystander2.close()
                deadline.set()
                break
            except TransactionError:
                import time
                time.sleep(0.05)
        assert deadline.is_set(), "dead client's transaction never released"
        cur = bystander.cursor()
        cur.execute("SELECT FROM land_cover")
        labels = [row["label"] for row in cur.fetchall()]
        assert labels == ["base"]  # rolled back, bystander undisturbed
        bystander.close()


class TestConcurrentWire:
    def test_parallel_readers_on_separate_connections(self, server):
        seed = _connect(server)
        for i in range(8):
            _store(seed, f"c{i}", x=float(10 * i))
        seed.close()

        failures = []

        def worker():
            try:
                conn = _connect(server)
                for _ in range(5):
                    cur = conn.cursor()
                    cur.execute("SELECT FROM land_cover")
                    rows = cur.fetchall()
                    if len(rows) != 8:
                        failures.append(f"saw {len(rows)} rows")
                conn.close()
            except Exception as exc:  # noqa: BLE001 — collect everything
                failures.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert not failures, failures[0]
