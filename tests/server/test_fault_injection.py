"""Fault-injection tests: crashes at the worst moments.

* the server process dying mid-commit — on either side of the WAL
  COMMIT record, the durability point: recovery must replay all of the
  transaction or none of it, never a partial state;
* a client socket killed mid-fetchmany with rows still buffered
  server-side — the victim's transaction rolls back and every other
  connection keeps working undisturbed.
"""

from __future__ import annotations

import threading

import pytest

from repro.adt import make_standard_registries
from repro.client import remote_connect
from repro.errors import InterfaceError
from repro.server import GaeaServer
from repro.spatial import Box
from repro.storage import StorageEngine
from repro.temporal import AbsTime

DDL = """
DEFINE CLASS land_cover (
  ATTRIBUTES: label = char16;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""


class _Crash(RuntimeError):
    """Stands in for the process dying at an injected point."""


def _engine():
    types = make_standard_registries()[0]
    engine = StorageEngine(types=types)
    engine.create_relation("t", [("k", "int4")])
    return engine, types


class TestCrashMidCommit:
    def test_crash_after_wal_commit_record_replays_transaction(self):
        """Die between the WAL COMMIT append and the in-memory commit:
        the record hit the log, so recovery must show the transaction."""
        engine, types = _engine()
        tx = engine.begin()
        engine.insert("t", (1,), tx)
        engine.insert("t", (2,), tx)

        real_commit = engine.transactions.commit

        def dying_commit(transaction):
            raise _Crash("process died after the WAL append")

        engine.transactions.commit = dying_commit
        with pytest.raises(_Crash):
            engine.commit(tx)
        engine.transactions.commit = real_commit

        # The crashed process's memory is gone; replay the log.
        recovered = StorageEngine.recover(engine.wal, types)
        keys = sorted(row["k"] for row in recovered.scan("t"))
        assert keys == [1, 2], "logged commit must replay in full"

    def test_crash_before_wal_commit_record_hides_transaction(self):
        """Die while appending the COMMIT record itself: it never hit
        the log, so recovery must show none of the transaction."""
        engine, types = _engine()
        keeper = engine.begin()
        engine.insert("t", (0,), keeper)
        engine.commit(keeper)

        tx = engine.begin()
        engine.insert("t", (1,), tx)
        engine.insert("t", (2,), tx)

        real_append = engine.wal.append

        def dying_append(kind, xid, payload=None):
            from repro.storage.wal import LogKind
            if kind is LogKind.COMMIT:
                raise _Crash("process died before the WAL append")
            return real_append(kind, xid=xid, payload=payload or {})

        engine.wal.append = dying_append
        with pytest.raises(_Crash):
            engine.commit(tx)
        engine.wal.append = real_append

        recovered = StorageEngine.recover(engine.wal, types)
        keys = sorted(row["k"] for row in recovered.scan("t"))
        assert keys == [0], "unlogged commit must vanish entirely — " \
            "no partial transaction"


class TestClientDeathMidFetch:
    def test_kill_socket_mid_fetchmany_leaves_others_undisturbed(self):
        with GaeaServer() as server:
            setup = remote_connect(server.host, server.port)
            setup.cursor().execute(DDL)
            for i in range(20):
                setup.store("land_cover", {
                    "label": f"c{i}",
                    "spatialextent": Box(float(10 * i), 0,
                                         float(10 * i) + 5, 5),
                    "timestamp": AbsTime(days=i),
                })
            setup.close()

            victim = remote_connect(server.host, server.port)
            bystander = remote_connect(server.host, server.port)

            cur = victim.cursor()
            cur.execute("SELECT FROM land_cover")
            assert len(cur.fetchmany(5)) == 5  # rows remain buffered
            # The client dies abruptly: raw socket close, stream half-read.
            victim._sock.close()
            victim._closed = True

            # The bystander's session is a different thread + Connection:
            # its queries keep succeeding, before and after the victim's
            # server thread notices the dead socket.
            for _ in range(3):
                other = bystander.cursor()
                other.execute("SELECT FROM land_cover")
                assert len(other.fetchall()) == 20

            # And new connections are still accepted.
            late = remote_connect(server.host, server.port)
            late_cur = late.cursor()
            late_cur.execute("SELECT FROM land_cover")
            assert len(late_cur.fetchall()) == 20
            late.close()
            bystander.close()

    def test_fetch_on_dead_connection_raises_interface_error(self):
        with GaeaServer() as server:
            conn = remote_connect(server.host, server.port)
            conn.cursor().execute(DDL)
            conn.store("land_cover", {
                "label": "forest",
                "spatialextent": Box(0, 0, 5, 5),
                "timestamp": AbsTime(days=1),
            })
            cur = conn.cursor()
            cur.execute("SELECT FROM land_cover")
            conn._sock.close()  # transport dies under the cursor
            with pytest.raises(InterfaceError):
                cur.fetchall()

    def test_mid_transaction_death_releases_writer_slot(self):
        """A victim dying inside a write transaction frees the single
        writer for the next connection (its work rolled back)."""
        import time

        from repro.errors import TransactionError

        with GaeaServer() as server:
            setup = remote_connect(server.host, server.port)
            setup.cursor().execute(DDL)
            setup.store("land_cover", {
                "label": "base",
                "spatialextent": Box(0, 0, 5, 5),
                "timestamp": AbsTime(days=1),
            })
            setup.close()

            victim = remote_connect(server.host, server.port)
            victim.begin()
            victim.store("land_cover", {
                "label": "doomed",
                "spatialextent": Box(10, 0, 15, 5),
                "timestamp": AbsTime(days=2),
            })
            victim._sock.close()
            victim._closed = True

            acquired = False
            for _ in range(100):
                successor = remote_connect(server.host, server.port)
                try:
                    successor.begin()
                    successor.rollback()
                    acquired = True
                    break
                except TransactionError:
                    time.sleep(0.05)
                finally:
                    successor.close()
            assert acquired, "writer slot never released after death"

            check = remote_connect(server.host, server.port)
            cur = check.cursor()
            cur.execute("SELECT FROM land_cover")
            assert [row["label"] for row in cur.fetchall()] == ["base"]
            check.close()
