"""Tests for generic temporal interpolation."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import NonPrimitiveClass, TemporalInterpolator
from repro.core.interpolation import InterpolationError
from repro.spatial import Box
from repro.temporal import AbsTime


CLS = NonPrimitiveClass(
    name="field",
    attributes=(("label", "char16"), ("level", "float8"),
                ("count", "int4"), ("data", "image"),
                ("spatialextent", "box"), ("timestamp", "abstime")),
)


def _obj(kernel, day, level, pixels, label="x", count=None):
    return kernel.store.store("field", {
        "label": label,
        "level": level,
        "count": count if count is not None else int(level),
        "data": Image.from_array(np.full((2, 2), pixels), "float4"),
        "spatialextent": Box(0, 0, 1, 1),
        "timestamp": AbsTime(day),
    })


@pytest.fixture()
def setup(kernel):
    kernel.derivations.define_class(CLS)
    return kernel


class TestWeight:
    def test_midpoint(self):
        interp = TemporalInterpolator()
        w = interp.weight(AbsTime(0), AbsTime(10), AbsTime(5))
        assert w == 0.5

    def test_bounds(self):
        interp = TemporalInterpolator()
        assert interp.weight(AbsTime(0), AbsTime(10), AbsTime(0)) == 0.0
        assert interp.weight(AbsTime(0), AbsTime(10), AbsTime(10)) == 1.0

    def test_outside_range_rejected(self):
        interp = TemporalInterpolator()
        with pytest.raises(InterpolationError):
            interp.weight(AbsTime(0), AbsTime(10), AbsTime(11))

    def test_equal_snapshots(self):
        interp = TemporalInterpolator()
        assert interp.weight(AbsTime(5), AbsTime(5), AbsTime(5)) == 0.0


class TestAttributeBlending:
    def test_floats_linear(self, setup):
        a = _obj(setup, 0, 0.0, 0.0)
        b = _obj(setup, 10, 100.0, 0.0)
        values = TemporalInterpolator().interpolate(CLS, a, b, AbsTime(3))
        assert values["level"] == pytest.approx(30.0)

    def test_ints_rounded(self, setup):
        a = _obj(setup, 0, 0.0, 0.0, count=0)
        b = _obj(setup, 10, 0.0, 0.0, count=5)
        values = TemporalInterpolator().interpolate(CLS, a, b, AbsTime(5))
        assert values["count"] == 2  # round(2.5) banker's -> 2

    def test_images_blend_pixelwise(self, setup):
        a = _obj(setup, 0, 0.0, 1.0)
        b = _obj(setup, 10, 0.0, 3.0)
        values = TemporalInterpolator().interpolate(CLS, a, b, AbsTime(5))
        assert np.allclose(values["data"].data, 2.0, atol=1e-6)

    def test_timestamp_is_target(self, setup):
        a = _obj(setup, 0, 0.0, 0.0)
        b = _obj(setup, 10, 0.0, 0.0)
        values = TemporalInterpolator().interpolate(CLS, a, b, AbsTime(7))
        assert values["timestamp"] == AbsTime(7)

    def test_categorical_must_agree(self, setup):
        a = _obj(setup, 0, 0.0, 0.0, label="x")
        b = _obj(setup, 10, 0.0, 0.0, label="y")
        with pytest.raises(InterpolationError):
            TemporalInterpolator().interpolate(CLS, a, b, AbsTime(5))

    def test_swapped_snapshots_normalized(self, setup):
        a = _obj(setup, 0, 0.0, 0.0)
        b = _obj(setup, 10, 100.0, 0.0)
        values = TemporalInterpolator().interpolate(CLS, b, a, AbsTime(3))
        assert values["level"] == pytest.approx(30.0)

    def test_image_shape_mismatch(self, setup):
        a = _obj(setup, 0, 0.0, 0.0)
        b = setup.store.store("field", {
            "label": "x", "level": 0.0, "count": 0,
            "data": Image.from_array(np.zeros((3, 3)), "float4"),
            "spatialextent": Box(0, 0, 1, 1),
            "timestamp": AbsTime(10),
        })
        with pytest.raises(InterpolationError):
            TemporalInterpolator().interpolate(CLS, a, b, AbsTime(5))

    def test_wrong_class_rejected(self, setup):
        other_cls = NonPrimitiveClass(
            name="other",
            attributes=(("data", "image"), ("spatialextent", "box"),
                        ("timestamp", "abstime")),
        )
        setup.derivations.define_class(other_cls)
        a = _obj(setup, 0, 0.0, 0.0)
        b = _obj(setup, 10, 0.0, 0.0)
        with pytest.raises(InterpolationError):
            TemporalInterpolator().interpolate(other_cls, a, b, AbsTime(5))
