"""Tests for the metadata-manager facade (the Gaea kernel, Figure 1)."""

from repro.core import open_kernel
from repro.figures import AFRICA


class TestComponentTree:
    def test_figure1_boxes_present(self, kernel):
        tree = kernel.component_tree()
        manager = tree["GAEA KERNEL"]["Meta-Data Manager"]
        assert "Data Type/Operator Manager" in manager
        assert "Derivation Manager" in manager
        assert "Experiment Manager" in manager
        assert "POSTGRES BACKEND (substitute)" in tree

    def test_counts_track_definitions(self, figure2_catalog):
        tree = figure2_catalog.kernel.component_tree()
        derivation = tree["GAEA KERNEL"]["Meta-Data Manager"][
            "Derivation Manager"]
        assert derivation["classes"] == len(figure2_catalog.class_names)
        assert derivation["processes"] == len(figure2_catalog.process_names)
        experiment = tree["GAEA KERNEL"]["Meta-Data Manager"][
            "Experiment Manager"]
        assert experiment["concepts"] == len(figure2_catalog.concept_names)

    def test_describe_renders(self, kernel):
        text = kernel.describe()
        assert text.startswith("Gaea kernel")
        assert "Derivation Manager" in text


class TestOpenKernel:
    def test_kernels_are_independent(self):
        k1 = open_kernel(universe=AFRICA)
        k2 = open_kernel(universe=AFRICA)
        k1.concepts.define("only_in_k1")
        assert "only_in_k1" not in k2.concepts

    def test_standard_types_loaded(self, kernel):
        assert "image" in kernel.types
        assert "box" in kernel.types

    def test_three_layers_share_the_store(self, kernel):
        assert kernel.derivations.store is kernel.store
        assert kernel.experiments.derivations is kernel.derivations
        assert kernel.planner.manager is kernel.derivations
        assert kernel.provenance.tasks is kernel.derivations.tasks
