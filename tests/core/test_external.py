"""Tests for non-local and non-applicative derivations (§5 future work)."""

import numpy as np
import pytest

from repro.adt import Image, make_standard_registries
from repro.core import (
    Apply,
    Argument,
    AttrRef,
    Literal,
    NonPrimitiveClass,
    Process,
)
from repro.core.external import (
    RemoteExecutor,
    RemoteSite,
    is_external,
    record_external_derivation,
)
from repro.errors import TaskExecutionError, UnknownProcessError
from repro.gis import register_gis_operators
from repro.spatial import Box
from repro.temporal import AbsTime


FIELD = NonPrimitiveClass(
    name="field",
    attributes=(("data", "image"), ("spatialextent", "box"),
                ("timestamp", "abstime")),
)
PRODUCT = NonPrimitiveClass(
    name="product",
    attributes=(("data", "image"), ("spatialextent", "box"),
                ("timestamp", "abstime")),
    derived_by="refine",
)


def _refine() -> Process:
    return Process(
        name="refine", output_class="product",
        arguments=(Argument(name="src", class_name="field"),),
        mappings={
            "data": Apply("img_scale", (AttrRef("src", "data"),
                                        Literal(2.0))),
            "spatialextent": AttrRef("src", "spatialextent"),
            "timestamp": AttrRef("src", "timestamp"),
        },
    )


@pytest.fixture()
def world(kernel):
    kernel.derivations.define_class(FIELD)
    kernel.derivations.define_class(PRODUCT)
    src = kernel.store.store("field", {
        "data": Image.from_array(np.ones((4, 4)), "float4"),
        "spatialextent": Box(0, 0, 1, 1),
        "timestamp": AbsTime(0),
    })
    return kernel, src


def _site(name="wpi-gis") -> RemoteSite:
    types, ops = make_standard_registries()
    register_gis_operators(ops)
    site = RemoteSite(name=name, operators=ops)
    site.publish(_refine())
    return site


class TestRemoteSites:
    def test_publish_and_offer(self):
        site = _site()
        assert site.offered() == ["refine"]
        with pytest.raises(UnknownProcessError):
            site.publish(_refine())
        with pytest.raises(UnknownProcessError):
            site.get("ghost")

    def test_execute_remote_records_locally(self, world):
        kernel, src = world
        executor = RemoteExecutor(manager=kernel.derivations)
        executor.register_site(_site())
        result = executor.execute_remote("wpi-gis", "refine", {"src": src})
        assert result.output.class_name == "product"
        assert np.allclose(result.output["data"].data, 2.0)
        # Task attributed to the site, lineage intact.
        assert result.task.parameters["__executed_at__"] == "wpi-gis"
        lineage = kernel.provenance.lineage(result.output.oid)
        assert lineage.base_oids == {src.oid}

    def test_shipping_statistics(self, world):
        kernel, src = world
        site = _site()
        executor = RemoteExecutor(manager=kernel.derivations)
        executor.register_site(site)
        executor.execute_remote("wpi-gis", "refine", {"src": src})
        assert site.calls == 1
        assert site.bytes_shipped > 0

    def test_sites_offering(self, world):
        kernel, _ = world
        executor = RemoteExecutor(manager=kernel.derivations)
        executor.register_site(_site("site-a"))
        executor.register_site(_site("site-b"))
        assert sorted(executor.sites_offering("refine")) == \
            ["site-a", "site-b"]
        assert executor.sites_offering("ghost") == []

    def test_unknown_site(self, world):
        kernel, src = world
        executor = RemoteExecutor(manager=kernel.derivations)
        with pytest.raises(UnknownProcessError):
            executor.execute_remote("nowhere", "refine", {"src": src})

    def test_output_class_must_exist_locally(self, kernel):
        kernel.derivations.define_class(FIELD)  # but not PRODUCT
        src = kernel.store.store("field", {
            "data": Image.from_array(np.ones((2, 2)), "float4"),
            "spatialextent": Box(0, 0, 1, 1),
            "timestamp": AbsTime(0),
        })
        executor = RemoteExecutor(manager=kernel.derivations)
        executor.register_site(_site())
        with pytest.raises(UnknownProcessError):
            executor.execute_remote("wpi-gis", "refine", {"src": src})

    def test_duplicate_site_rejected(self, world):
        kernel, _ = world
        executor = RemoteExecutor(manager=kernel.derivations)
        executor.register_site(_site())
        with pytest.raises(UnknownProcessError):
            executor.register_site(_site())


class TestNonApplicative:
    def test_record_external(self, world):
        kernel, src = world
        result = record_external_derivation(
            kernel.derivations,
            procedure="visual interpretation of 1:50k air photos",
            inputs={"photos": src},
            output_class="product",
            output_values={
                "data": Image.from_array(np.full((4, 4), 7.0), "float4"),
                "spatialextent": Box(0, 0, 1, 1),
                "timestamp": AbsTime(0),
            },
        )
        assert is_external(result.task)
        lineage = kernel.provenance.lineage(result.output.oid)
        assert lineage.depth == 1
        assert lineage.base_oids == {src.oid}

    def test_external_not_reexecutable(self, world):
        kernel, src = world
        result = record_external_derivation(
            kernel.derivations, procedure="field survey, 1991",
            inputs={"survey": src}, output_class="product",
            output_values={
                "data": Image.from_array(np.zeros((4, 4)), "float4"),
                "spatialextent": Box(0, 0, 1, 1),
                "timestamp": AbsTime(0),
            },
        )
        with pytest.raises(TaskExecutionError, match="non-applicative"):
            kernel.derivations.reproduce_task(result.task.task_id)

    def test_procedure_description_required(self, world):
        kernel, src = world
        with pytest.raises(TaskExecutionError):
            record_external_derivation(
                kernel.derivations, procedure="   ",
                inputs={"x": src}, output_class="product",
                output_values={},
            )

    def test_external_comparable_with_computed(self, world):
        """The §1 sharing question works across the applicative divide:
        an external product and a computed product compare as different
        derivations of the same class."""
        kernel, src = world
        computed = kernel.derivations.execute_process("refine", {"src": src}) \
            if "refine" in kernel.derivations.processes else None
        if computed is None:
            kernel.derivations.define_process(_refine())
            computed = kernel.derivations.execute_process("refine",
                                                          {"src": src})
        external = record_external_derivation(
            kernel.derivations, procedure="manual digitization",
            inputs={"x": src}, output_class="product",
            output_values={
                "data": Image.from_array(np.full((4, 4), 9.0), "float4"),
                "spatialextent": Box(0, 0, 1, 1),
                "timestamp": AbsTime(0),
            },
        )
        assert kernel.provenance.same_concept_different_derivation(
            computed.output.oid, external.output.oid
        )
