"""Tests for concepts and the ISA hierarchy."""

import pytest

from repro.core import ConceptHierarchy
from repro.errors import (
    ConceptAlreadyDefinedError,
    ConceptCycleError,
    UnknownConceptError,
)


@pytest.fixture()
def deserts():
    """The Figure-2 desert hierarchy."""
    h = ConceptHierarchy()
    h.define("desert")
    h.define("hot_trade_wind", member_classes={"C2", "C3", "C4", "C5"})
    h.define("ice_snow")
    h.add_isa("hot_trade_wind", "desert")
    h.add_isa("ice_snow", "desert")
    return h


class TestDefinition:
    def test_define_and_get(self, deserts):
        assert deserts.get("desert").name == "desert"
        assert "desert" in deserts
        assert set(deserts.names()) == {"desert", "hot_trade_wind", "ice_snow"}

    def test_duplicate_rejected(self, deserts):
        with pytest.raises(ConceptAlreadyDefinedError):
            deserts.define("desert")

    def test_unknown(self, deserts):
        with pytest.raises(UnknownConceptError):
            deserts.get("swamp")


class TestISADag:
    def test_parents_children(self, deserts):
        assert deserts.parents("hot_trade_wind") == {"desert"}
        assert deserts.children("desert") == {"hot_trade_wind", "ice_snow"}

    def test_ancestors_descendants(self, deserts):
        deserts.define("saharan")
        deserts.add_isa("saharan", "hot_trade_wind")
        assert deserts.ancestors("saharan") == {"hot_trade_wind", "desert"}
        assert deserts.descendants("desert") == {
            "hot_trade_wind", "ice_snow", "saharan"
        }

    def test_self_loop_rejected(self, deserts):
        with pytest.raises(ConceptCycleError):
            deserts.add_isa("desert", "desert")

    def test_cycle_rejected(self, deserts):
        with pytest.raises(ConceptCycleError):
            deserts.add_isa("desert", "hot_trade_wind")

    def test_dag_multiple_parents_allowed(self, deserts):
        # Footnote 4: hierarchies can be general DAGs.
        deserts.define("arid_region")
        deserts.define("coastal_desert")
        deserts.add_isa("coastal_desert", "desert")
        deserts.add_isa("coastal_desert", "arid_region")
        assert deserts.parents("coastal_desert") == {"desert", "arid_region"}

    def test_roots_and_leaves(self, deserts):
        assert deserts.roots() == {"desert"}
        assert deserts.leaves_under("desert") == {"hot_trade_wind", "ice_snow"}
        assert deserts.leaves_under("ice_snow") == {"ice_snow"}


class TestConceptClassMapping:
    def test_member_classes(self, deserts):
        assert deserts.classes_of("hot_trade_wind") == {"C2", "C3", "C4", "C5"}

    def test_attach_class(self, deserts):
        deserts.attach_class("ice_snow", "C9")
        assert "C9" in deserts.get("ice_snow")

    def test_transitive_classes(self, deserts):
        deserts.attach_class("ice_snow", "C9")
        assert deserts.classes_of("desert", transitive=True) == {
            "C2", "C3", "C4", "C5", "C9"
        }
        assert deserts.classes_of("desert") == set()

    def test_concepts_of_class(self, deserts):
        assert deserts.concepts_of_class("C2") == {"hot_trade_wind"}
        assert deserts.concepts_of_class("nope") == set()

    def test_silly_concepts_possible(self, deserts):
        # §2.1.1: "It is possible to create silly concepts, such as the
        # union of the CLOUD and CENSUS classes, but we leave it to the
        # user to avoid such."  The system must not forbid it.
        deserts.define("silly", member_classes={"CLOUD", "CENSUS"})
        assert deserts.classes_of("silly") == {"CLOUD", "CENSUS"}
