"""Tests for lineage and derivation comparison."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import Apply, Argument, AttrRef, NonPrimitiveClass, Process
from repro.spatial import Box
from repro.temporal import AbsTime


@pytest.fixture()
def chain(kernel):
    """base -> step1 -> step2 chain of classes and processes."""
    for name, derived in (("c_base", None), ("c_mid", "mk_mid"),
                          ("c_top", "mk_top")):
        kernel.derivations.define_class(NonPrimitiveClass(
            name=name,
            attributes=(("data", "image"), ("spatialextent", "box"),
                        ("timestamp", "abstime")),
            derived_by=derived,
        ))

    def passthrough(name, src_cls, out_cls):
        return Process(
            name=name, output_class=out_cls,
            arguments=(Argument(name="src", class_name=src_cls),),
            mappings={
                "data": Apply("img_scale", (AttrRef("src", "data"),
                                            __import__("repro.core",
                                                       fromlist=["Literal"]
                                                       ).Literal(2.0))),
                "spatialextent": AttrRef("src", "spatialextent"),
                "timestamp": AttrRef("src", "timestamp"),
            },
        )

    kernel.derivations.define_process(passthrough("mk_mid", "c_base", "c_mid"))
    kernel.derivations.define_process(passthrough("mk_top", "c_mid", "c_top"))
    base = kernel.store.store("c_base", {
        "data": Image.from_array(np.ones((2, 2)), "float4"),
        "spatialextent": Box(0, 0, 1, 1),
        "timestamp": AbsTime(0),
    })
    mid = kernel.derivations.execute_process("mk_mid", {"src": base}).output
    top = kernel.derivations.execute_process("mk_top", {"src": mid}).output
    return kernel, base, mid, top


class TestLineage:
    def test_base_object_lineage(self, chain):
        kernel, base, _, _ = chain
        lineage = kernel.provenance.lineage(base.oid)
        assert lineage.steps == ()
        assert lineage.base_oids == {base.oid}
        assert lineage.depth == 0
        assert "base object" in lineage.describe()

    def test_chain_lineage(self, chain):
        kernel, base, mid, top = chain
        lineage = kernel.provenance.lineage(top.oid)
        assert [t.process_name for t in lineage.steps] == ["mk_mid", "mk_top"]
        assert lineage.base_oids == {base.oid}
        assert lineage.depth == 2
        assert lineage.processes_used() == ["mk_mid", "mk_top"]

    def test_derived_from(self, chain):
        kernel, base, mid, top = chain
        assert kernel.provenance.derived_from(base.oid) == {mid.oid, top.oid}
        assert kernel.provenance.derived_from(top.oid) == set()


class TestComparison:
    def test_same_concept_different_derivation(self, chain):
        kernel, base, mid, top = chain
        assert kernel.provenance.same_concept_different_derivation(
            mid.oid, top.oid
        )
        mid2 = kernel.derivations.execute_process(
            "mk_mid", {"src": base}, reuse=False
        ).output
        assert not kernel.provenance.same_concept_different_derivation(
            mid.oid, mid2.oid
        )

    def test_base_vs_derived(self, chain):
        kernel, base, mid, _ = chain
        assert kernel.provenance.same_concept_different_derivation(
            base.oid, mid.oid
        )

    def test_compare_derivations_structure(self, chain):
        kernel, base, mid, top = chain
        report = kernel.provenance.compare_derivations(mid.oid, top.oid)
        assert report["processes_a"] == ["mk_mid"]
        assert report["processes_b"] == ["mk_mid", "mk_top"]
        assert not report["identical_procedure"]
        assert report["shared_base_inputs"] == [base.oid]
        assert report["depth_a"] == 1 and report["depth_b"] == 2

    def test_ndvi_scenario_from_paper(self, kernel):
        """§1: subtraction vs division results are incomparable without
        derivation metadata; the browser reports them as different."""
        kernel.derivations.define_class(NonPrimitiveClass(
            name="ndvi",
            attributes=(("data", "image"), ("spatialextent", "box"),
                        ("timestamp", "abstime")),
        ))
        kernel.derivations.define_class(NonPrimitiveClass(
            name="chg_sub",
            attributes=(("data", "image"), ("spatialextent", "box"),
                        ("timestamp", "abstime")),
            derived_by="by_sub",
        ))
        kernel.derivations.define_class(NonPrimitiveClass(
            name="chg_div",
            attributes=(("data", "image"), ("spatialextent", "box"),
                        ("timestamp", "abstime")),
            derived_by="by_div",
        ))
        from repro.core import Literal

        def change(name, out_cls, op):
            return Process(
                name=name, output_class=out_cls,
                arguments=(Argument(name="later", class_name="ndvi"),
                           Argument(name="earlier", class_name="ndvi")),
                mappings={
                    "data": Apply(op, (AttrRef("later", "data"),
                                       AttrRef("earlier", "data"))),
                    "spatialextent": AttrRef("later", "spatialextent"),
                    "timestamp": AttrRef("later", "timestamp"),
                },
            )

        kernel.derivations.define_process(change("by_sub", "chg_sub",
                                                 "img_subtract"))
        kernel.derivations.define_process(change("by_div", "chg_div",
                                                 "img_divide"))
        rng = np.random.default_rng(1)
        objs = [kernel.store.store("ndvi", {
            "data": Image.from_array(rng.random((4, 4)) + 0.1, "float4"),
            "spatialextent": Box(0, 0, 1, 1),
            "timestamp": AbsTime(day),
        }) for day in (0, 365)]
        a = kernel.derivations.execute_process(
            "by_sub", {"later": objs[1], "earlier": objs[0]}).output
        b = kernel.derivations.execute_process(
            "by_div", {"later": objs[1], "earlier": objs[0]}).output
        assert kernel.provenance.same_concept_different_derivation(a.oid,
                                                                   b.oid)
        report = kernel.provenance.compare_derivations(a.oid, b.oid)
        assert report["shared_base_inputs"] == [objs[0].oid, objs[1].oid]
