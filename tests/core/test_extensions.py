"""Tests for the paper's future-work extensions.

* Spatial interpolation (mosaicking) — §2.1.5 names "interpolation
  (temporal or spatial)"; the planner's coverage mode implements the
  spatial half.
* Interactive processes — §4.3 lists user interaction (supervised
  classification) as a limitation; the extension resolves *interaction
  points* at task time and records them for replay.
"""

import numpy as np
import pytest

from repro.adt import Image, Matrix
from repro.core import (
    Apply,
    Argument,
    AttrRef,
    NonPrimitiveClass,
    ParamRef,
    Process,
)
from repro.errors import InteractionRequiredError, UnderivableError
from repro.gis import composite
from repro.spatial import Box
from repro.temporal import AbsTime


FIELD = NonPrimitiveClass(
    name="field",
    attributes=(("area", "char16"), ("data", "image"),
                ("spatialextent", "box"), ("timestamp", "abstime")),
)


def _tile(kernel, box, value, day=0, size=8, area="africa"):
    return kernel.store.store("field", {
        "area": area,
        "data": Image.from_array(np.full((size, size), float(value)),
                                 "float4"),
        "spatialextent": box,
        "timestamp": AbsTime(day),
    })


class TestSpatialInterpolation:
    @pytest.fixture()
    def world(self, kernel):
        kernel.derivations.define_class(FIELD)
        return kernel

    def test_mosaic_covers_query_region(self, world):
        """Two adjacent tiles jointly answer a region neither contains."""
        _tile(world, Box(0, 0, 10, 10), 1.0)
        _tile(world, Box(10, 0, 20, 10), 3.0)
        query = Box(5, 2, 15, 8)
        result = world.planner.retrieve("field", spatial=query,
                                        spatial_coverage=True)
        assert result.path == "interpolate"
        obj = result.object
        assert obj["spatialextent"] == query
        data = obj["data"].data
        # Left half sampled from the 1.0 tile, right half from the 3.0.
        assert float(data[:, 0].mean()) == pytest.approx(1.0)
        assert float(data[:, -1].mean()) == pytest.approx(3.0)

    def test_coverage_mode_rejects_partial_overlap(self, world):
        """Without coverage a partial tile satisfies the query; with
        coverage it does not (and there is nothing to mosaic with)."""
        _tile(world, Box(0, 0, 10, 10), 1.0)
        query = Box(5, 5, 15, 15)
        loose = world.planner.retrieve("field", spatial=query)
        assert loose.path == "retrieve"
        with pytest.raises(UnderivableError):
            world.planner.retrieve("field", spatial=query,
                                   spatial_coverage=True)

    def test_containing_object_preferred_over_mosaic(self, world):
        big = _tile(world, Box(0, 0, 30, 30), 7.0)
        _tile(world, Box(0, 0, 10, 10), 1.0)
        result = world.planner.retrieve("field", spatial=Box(2, 2, 8, 8),
                                        spatial_coverage=True)
        assert result.path == "retrieve"
        assert big.oid in {o.oid for o in result.objects}

    def test_overlapping_tiles_average(self, world):
        _tile(world, Box(0, 0, 10, 10), 2.0)
        _tile(world, Box(5, 0, 15, 10), 4.0)
        result = world.planner.retrieve("field", spatial=Box(1, 1, 14, 9),
                                        spatial_coverage=True)
        data = result.object["data"].data
        # The overlap zone (x in [5,10]) averages to 3.0.
        mid = data[:, data.shape[1] // 2]
        assert float(mid.mean()) == pytest.approx(3.0, abs=0.5)

    def test_attribute_disagreement_rejected(self, world):
        _tile(world, Box(0, 0, 10, 10), 1.0, area="africa")
        _tile(world, Box(10, 0, 20, 10), 1.0, area="asia")
        with pytest.raises(UnderivableError):
            world.planner.retrieve("field", spatial=Box(5, 2, 15, 8),
                                   spatial_coverage=True)

    def test_mosaic_result_is_materialized(self, world):
        _tile(world, Box(0, 0, 10, 10), 1.0)
        _tile(world, Box(10, 0, 20, 10), 3.0)
        query = Box(5, 2, 15, 8)
        world.planner.retrieve("field", spatial=query,
                               spatial_coverage=True)
        again = world.planner.retrieve("field", spatial=query,
                                       spatial_coverage=True)
        assert again.path == "retrieve"


class TestInteractiveProcesses:
    @pytest.fixture()
    def working(self, kernel):
        kernel.derivations.define_class(NonPrimitiveClass(
            name="tm_scene",
            attributes=(("band", "char16"), ("data", "image"),
                        ("spatialextent", "box"), ("timestamp", "abstime")),
        ))
        kernel.derivations.define_class(NonPrimitiveClass(
            name="supervised_cover",
            attributes=(("data", "image"), ("spatialextent", "box"),
                        ("timestamp", "abstime")),
            derived_by="supervised-classification",
        ))
        from repro.core import AnyOf

        kernel.derivations.define_process(Process(
            name="supervised-classification",
            output_class="supervised_cover",
            arguments=(Argument(name="bands", class_name="tm_scene",
                                is_set=True, min_cardinality=2),),
            interactions={
                "signatures": "digitize training-class signatures",
            },
            mappings={
                "data": Apply("superclassify",
                              (Apply("composite",
                                     (AttrRef("bands", "data"),)),
                               ParamRef("signatures"))),
                "spatialextent": AnyOf(AttrRef("bands", "spatialextent")),
                "timestamp": AnyOf(AttrRef("bands", "timestamp")),
            },
        ))
        box = Box(0, 0, 10, 10)
        rng = np.random.default_rng(3)
        bands = [
            kernel.store.store("tm_scene", {
                "band": name,
                "data": Image.from_array(rng.random((8, 8)), "float4"),
                "spatialextent": box,
                "timestamp": AbsTime(0),
            })
            for name in ("red", "nir")
        ]
        return kernel, bands

    SIGNATURES = Matrix.from_array([[0.2, 0.2], [0.8, 0.8]])

    def test_without_handler_reproduces_the_limitation(self, working):
        kernel, bands = working
        with pytest.raises(InteractionRequiredError):
            kernel.derivations.execute_process(
                "supervised-classification", {"bands": bands}
            )

    def test_handler_resolves_interaction(self, working):
        kernel, bands = working
        prompts = []

        def scientist(name, prompt):
            prompts.append((name, prompt))
            return self.SIGNATURES

        result = kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            interaction_handler=scientist,
        )
        assert prompts == [("signatures",
                            "digitize training-class signatures")]
        assert int(result.output["data"].data.max()) <= 1
        assert result.task.parameters["signatures"] == self.SIGNATURES

    def test_replay_needs_no_scientist(self, working):
        """The recorded task replays without prompting — interactive
        derivations become reproducible."""
        kernel, bands = working
        original = kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            interaction_handler=lambda name, prompt: self.SIGNATURES,
        )
        rerun = kernel.derivations.reproduce_task(original.task.task_id)
        assert rerun.output["data"] == original.output["data"]

    def test_memoization_respects_answers(self, working):
        """Same inputs + same answers reuse; different answers recompute."""
        kernel, bands = working
        first = kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            interaction_handler=lambda n, p: self.SIGNATURES,
        )
        same = kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            interaction_handler=lambda n, p: self.SIGNATURES,
        )
        assert same.reused and same.output.oid == first.output.oid
        other_sigs = Matrix.from_array([[0.1, 0.9], [0.9, 0.1]])
        different = kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            interaction_handler=lambda n, p: other_sigs,
        )
        assert not different.reused
        assert different.output.oid != first.output.oid

    def test_overrides_bypass_handler(self, working):
        kernel, bands = working
        result = kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            parameter_overrides={"signatures": self.SIGNATURES},
        )
        assert not result.reused


class TestCoverageWithPredicates:
    """Attribute predicates must not suppress the coverage fallbacks:
    'covered' means an object *contains* the query box, not merely
    overlaps it."""

    @pytest.fixture()
    def world(self, kernel):
        kernel.derivations.define_class(FIELD)
        return kernel

    def test_filters_do_not_suppress_mosaic_fallback(self, world):
        _tile(world, Box(0, 0, 10, 10), 1.0)
        _tile(world, Box(10, 0, 20, 10), 3.0)
        result = world.planner.retrieve(
            "field", spatial=Box(5, 2, 15, 8), spatial_coverage=True,
            filters=(("area", "africa"),),
        )
        assert result.path == "interpolate"
        assert result.object["area"] == "africa"

    def test_partial_overlap_with_filters_still_underivable(self, world):
        _tile(world, Box(0, 0, 10, 10), 1.0)
        with pytest.raises(UnderivableError):
            world.planner.retrieve(
                "field", spatial=Box(5, 5, 15, 15), spatial_coverage=True,
                filters=(("area", "africa"),),
            )
