"""Tests for non-primitive classes and the class store."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import NonPrimitiveClass
from repro.errors import (
    ClassAlreadyDefinedError,
    DerivationError,
    UnknownClassError,
)
from repro.spatial import Box
from repro.temporal import AbsTime


LANDCOVER = NonPrimitiveClass(
    name="landcover",
    attributes=(
        ("area", "char16"),
        ("numclass", "int4"),
        ("data", "image"),
        ("spatialextent", "box"),
        ("timestamp", "abstime"),
    ),
    derived_by="unsupervised-classification",
)


def _values(area="africa", x=0.0, day=0):
    return {
        "area": area,
        "numclass": 12,
        "data": Image.from_array(np.zeros((4, 4)), "int2"),
        "spatialextent": Box(x, 0, x + 10, 10),
        "timestamp": AbsTime(day),
    }


class TestDefinition:
    def test_describe_matches_paper_layout(self):
        text = LANDCOVER.describe()
        assert text.startswith("CLASS landcover (")
        assert "SPATIAL EXTENT:" in text
        assert "TEMPORAL EXTENT:" in text
        assert "DERIVED BY: unsupervised-classification" in text

    def test_base_vs_derived(self):
        assert not LANDCOVER.is_base
        base = NonPrimitiveClass(
            name="tm", attributes=(("data", "image"),),
            spatial_attr=None, temporal_attr=None,
        )
        assert base.is_base

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DerivationError):
            NonPrimitiveClass(
                name="bad", attributes=(("a", "int4"), ("a", "int4")),
                spatial_attr=None, temporal_attr=None,
            )

    def test_extent_attr_must_be_defined(self):
        with pytest.raises(DerivationError):
            NonPrimitiveClass(
                name="bad", attributes=(("a", "int4"),),
                spatial_attr="spatialextent", temporal_attr=None,
            )

    def test_type_of(self):
        assert LANDCOVER.type_of("numclass") == "int4"
        with pytest.raises(DerivationError):
            LANDCOVER.type_of("ghost")


class TestRegistry:
    def test_define_and_get(self, kernel):
        kernel.classes.define(LANDCOVER)
        assert kernel.classes.get("landcover").name == "landcover"
        assert "landcover" in kernel.classes

    def test_duplicate_rejected(self, kernel):
        kernel.classes.define(LANDCOVER)
        with pytest.raises(ClassAlreadyDefinedError):
            kernel.classes.define(LANDCOVER)

    def test_unknown(self, kernel):
        with pytest.raises(UnknownClassError):
            kernel.classes.get("ghost")

    def test_unknown_attribute_type_rejected(self, kernel):
        bad = NonPrimitiveClass(
            name="bad", attributes=(("a", "ghost_type"),),
            spatial_attr=None, temporal_attr=None,
        )
        with pytest.raises(Exception):
            kernel.classes.define(bad)

    def test_base_and_derived_listing(self, kernel):
        kernel.classes.define(LANDCOVER)
        assert LANDCOVER in kernel.classes.derived_classes()
        assert LANDCOVER not in kernel.classes.base_classes()


class TestStore:
    @pytest.fixture()
    def stored(self, kernel):
        kernel.derivations.define_class(LANDCOVER)
        return kernel.store.store("landcover", _values())

    def test_store_assigns_oid(self, stored):
        assert stored.oid == 1
        assert stored["numclass"] == 12

    def test_get_by_oid(self, kernel, stored):
        again = kernel.store.get(stored.oid)
        assert again.values == stored.values

    def test_get_unknown_oid(self, kernel, stored):
        with pytest.raises(UnknownClassError):
            kernel.store.get(999)

    def test_missing_attribute_rejected(self, kernel, stored):
        values = _values()
        del values["numclass"]
        with pytest.raises(DerivationError):
            kernel.store.store("landcover", values)

    def test_extra_attribute_rejected(self, kernel, stored):
        values = _values()
        values["bogus"] = 1
        with pytest.raises(DerivationError):
            kernel.store.store("landcover", values)

    def test_find_spatial(self, kernel, stored):
        kernel.store.store("landcover", _values(x=100.0))
        found = kernel.store.find("landcover", spatial=Box(-1, -1, 11, 11))
        assert [o.oid for o in found] == [stored.oid]

    def test_find_temporal(self, kernel, stored):
        kernel.store.store("landcover", _values(day=100))
        found = kernel.store.find("landcover", temporal=AbsTime(0))
        assert [o.oid for o in found] == [stored.oid]

    def test_find_with_predicate(self, kernel, stored):
        kernel.store.store("landcover", _values(area="asia"))
        found = kernel.store.find(
            "landcover", predicate=lambda o: o["area"] == "asia"
        )
        assert len(found) == 1 and found[0]["area"] == "asia"

    def test_count_and_objects(self, kernel, stored):
        assert kernel.store.count("landcover") == 1
        assert len(kernel.store.objects("landcover")) == 1

    def test_accessor_functions(self, kernel, stored):
        area_of = kernel.store.accessor("landcover", "area")
        assert area_of(stored) == "africa"

    def test_accessor_rejects_other_class(self, kernel, stored):
        kernel.derivations.define_class(NonPrimitiveClass(
            name="other", attributes=(("area", "char16"),),
            spatial_attr=None, temporal_attr=None,
        ))
        other = kernel.store.store("other", {"area": "x"})
        area_of = kernel.store.accessor("landcover", "area")
        with pytest.raises(DerivationError):
            area_of(other)

    def test_accessor_unknown_attribute(self, kernel, stored):
        with pytest.raises(DerivationError):
            kernel.store.accessor("landcover", "ghost")

    def test_sciobject_getitem_error(self, stored):
        with pytest.raises(DerivationError):
            stored["ghost"]
        assert stored.get("ghost", 5) == 5
