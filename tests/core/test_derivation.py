"""Tests for processes, templates, assertions and mappings."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import (
    AnyOf,
    Apply,
    Argument,
    AttrRef,
    CardinalityAssertion,
    CommonSpatialAssertion,
    CommonTemporalAssertion,
    ExprAssertion,
    Literal,
    NonPrimitiveClass,
    ParamRef,
    Process,
)
from repro.errors import (
    AssertionViolatedError,
    MappingError,
    ProcessAlreadyDefinedError,
    UnknownProcessError,
)
from repro.spatial import Box
from repro.temporal import AbsTime


BAND = NonPrimitiveClass(
    name="band",
    attributes=(("name", "char16"), ("data", "image"),
                ("spatialextent", "box"), ("timestamp", "abstime")),
)
COVER = NonPrimitiveClass(
    name="cover",
    attributes=(("numclass", "int4"), ("data", "image"),
                ("spatialextent", "box"), ("timestamp", "abstime")),
    derived_by="P20",
)


def _p20() -> Process:
    return Process(
        name="P20", output_class="cover",
        arguments=(Argument(name="bands", class_name="band", is_set=True,
                            min_cardinality=3),),
        assertions=(
            CardinalityAssertion("bands", 3),
            CommonSpatialAssertion("bands"),
            CommonTemporalAssertion("bands"),
        ),
        mappings={
            "data": Apply("unsuperclassify",
                          (Apply("composite", (AttrRef("bands", "data"),)),
                           Literal(12))),
            "numclass": Literal(12),
            "spatialextent": AnyOf(AttrRef("bands", "spatialextent")),
            "timestamp": AnyOf(AttrRef("bands", "timestamp")),
        },
    )


@pytest.fixture()
def manager(kernel):
    kernel.derivations.define_class(BAND)
    kernel.derivations.define_class(COVER)
    kernel.derivations.define_process(_p20())
    return kernel.derivations


def _band(kernel, name="red", x=0.0, day=0):
    rng = np.random.default_rng(hash(name) % 1000)
    return kernel.store.store("band", {
        "name": name,
        "data": Image.from_array(rng.random((8, 8)), "float4"),
        "spatialextent": Box(x, 0, x + 10, 10),
        "timestamp": AbsTime(day),
    })


class TestProcessDefinition:
    def test_registered(self, manager):
        assert "P20" in manager.processes
        assert manager.processes.get("P20").output_class == "cover"

    def test_duplicate_rejected(self, manager):
        with pytest.raises(ProcessAlreadyDefinedError):
            manager.define_process(_p20())

    def test_unmapped_attribute_rejected(self, manager):
        broken = _p20().edited("P20x")
        broken.mappings.pop("numclass")
        with pytest.raises(MappingError):
            manager.define_process(broken)

    def test_unknown_attribute_rejected(self, manager):
        broken = _p20().edited("P20y")
        broken.mappings["ghost"] = Literal(1)
        with pytest.raises(MappingError):
            manager.define_process(broken)

    def test_mapping_referencing_unknown_argument(self, manager):
        broken = _p20().edited("P20z")
        broken.mappings["numclass"] = AttrRef("ghost_arg", "x")
        with pytest.raises(UnknownProcessError):
            manager.define_process(broken)

    def test_describe_contains_figure3_elements(self, manager):
        text = manager.processes.get("P20").describe()
        assert "DEFINE PROCESS P20" in text
        assert "OUTPUT cover" in text
        assert "card(bands) = 3" in text
        assert "common(bands.spatialextent)" in text
        assert "ANYOF bands.spatialextent" in text

    def test_producing_consuming(self, manager):
        assert [p.name for p in manager.processes.producing("cover")] == ["P20"]
        assert [p.name for p in manager.processes.consuming("band")] == ["P20"]


class TestAssertions:
    def test_happy_path(self, kernel, manager):
        bands = [_band(kernel, n) for n in ("red", "nir", "green")]
        result = manager.execute_process("P20", {"bands": bands})
        assert result.output["numclass"] == 12
        assert result.output["spatialextent"] == bands[0]["spatialextent"]

    def test_cardinality_violated(self, kernel, manager):
        bands = [_band(kernel, n) for n in ("red", "nir")]
        with pytest.raises(AssertionViolatedError):
            manager.execute_process("P20", {"bands": bands})

    def test_spatial_common_violated(self, kernel, manager):
        bands = [_band(kernel, "red"), _band(kernel, "nir"),
                 _band(kernel, "green", x=1000.0)]
        with pytest.raises(AssertionViolatedError, match="spatialextent"):
            manager.execute_process("P20", {"bands": bands})

    def test_temporal_common_violated(self, kernel, manager):
        bands = [_band(kernel, "red"), _band(kernel, "nir"),
                 _band(kernel, "green", day=365)]
        with pytest.raises(AssertionViolatedError, match="timestamp"):
            manager.execute_process("P20", {"bands": bands})

    def test_wrong_class_rejected(self, kernel, manager):
        cover_obj = kernel.store.store("cover", {
            "numclass": 1, "data": Image.zeros(2, 2),
            "spatialextent": Box(0, 0, 1, 1), "timestamp": AbsTime(0),
        })
        with pytest.raises(AssertionViolatedError, match="expects class"):
            manager.execute_process("P20", {"bands": [cover_obj] * 3})

    def test_unbound_argument(self, manager):
        with pytest.raises(AssertionViolatedError, match="unbound"):
            manager.execute_process("P20", {})

    def test_unknown_argument(self, kernel, manager):
        bands = [_band(kernel, n) for n in ("red", "nir", "green")]
        with pytest.raises(AssertionViolatedError, match="unknown argument"):
            manager.execute_process("P20", {"bands": bands, "bogus": bands[0]})

    def test_scalar_arg_rejects_list(self, kernel, manager):
        p21 = Process(
            name="copy", output_class="cover",
            arguments=(Argument(name="src", class_name="cover"),),
            mappings={
                "data": AttrRef("src", "data"),
                "numclass": AttrRef("src", "numclass"),
                "spatialextent": AttrRef("src", "spatialextent"),
                "timestamp": AttrRef("src", "timestamp"),
            },
        )
        manager.define_process(p21)
        cover_obj = kernel.store.store("cover", {
            "numclass": 1, "data": Image.zeros(2, 2),
            "spatialextent": Box(0, 0, 1, 1), "timestamp": AbsTime(0),
        })
        with pytest.raises(AssertionViolatedError, match="single object"):
            manager.execute_process("copy", {"src": [cover_obj]})

    def test_expr_assertion_must_be_boolean(self, kernel, manager):
        bad = Process(
            name="badassert", output_class="cover",
            arguments=(Argument(name="src", class_name="cover"),),
            assertions=(ExprAssertion(expr=Literal(42)),),
            mappings={
                "data": AttrRef("src", "data"),
                "numclass": AttrRef("src", "numclass"),
                "spatialextent": AttrRef("src", "spatialextent"),
                "timestamp": AttrRef("src", "timestamp"),
            },
        )
        manager.define_process(bad)
        cover_obj = kernel.store.store("cover", {
            "numclass": 1, "data": Image.zeros(2, 2),
            "spatialextent": Box(0, 0, 1, 1), "timestamp": AbsTime(0),
        })
        with pytest.raises(AssertionViolatedError):
            manager.execute_process("badassert", {"src": cover_obj})


class TestExpressions:
    def test_param_ref(self, kernel, manager):
        process = Process(
            name="mask", output_class="cover",
            arguments=(Argument(name="src", class_name="cover"),),
            parameters={"cutoff": 5.0},
            mappings={
                "data": Apply("img_threshold",
                              (AttrRef("src", "data"), ParamRef("cutoff"))),
                "numclass": Literal(2),
                "spatialextent": AttrRef("src", "spatialextent"),
                "timestamp": AttrRef("src", "timestamp"),
            },
        )
        manager.define_process(process)
        src = kernel.store.store("cover", {
            "numclass": 1,
            "data": Image.from_array(np.array([[1.0, 9.0]]), "float4"),
            "spatialextent": Box(0, 0, 1, 1), "timestamp": AbsTime(0),
        })
        out = manager.execute_process("mask", {"src": src})
        assert out.output["data"].data.tolist() == [[1, 0]]

    def test_unknown_param(self, kernel, manager):
        process = Process(
            name="bad_param", output_class="cover",
            arguments=(Argument(name="src", class_name="cover"),),
            mappings={
                "data": AttrRef("src", "data"),
                "numclass": ParamRef("ghost"),
                "spatialextent": AttrRef("src", "spatialextent"),
                "timestamp": AttrRef("src", "timestamp"),
            },
        )
        manager.define_process(process)
        src = kernel.store.store("cover", {
            "numclass": 1, "data": Image.zeros(2, 2),
            "spatialextent": Box(0, 0, 1, 1), "timestamp": AbsTime(0),
        })
        with pytest.raises(MappingError):
            manager.execute_process("bad_param", {"src": src})

    def test_anyof_is_deterministic(self, kernel, manager):
        bands = [_band(kernel, n) for n in ("red", "nir", "green")]
        out1 = manager.execute_process("P20", {"bands": bands}, reuse=False)
        out2 = manager.execute_process("P20", {"bands": bands}, reuse=False)
        assert out1.output["timestamp"] == out2.output["timestamp"]

    def test_referenced_args(self):
        expr = Apply("f", (AttrRef("a", "x"), AnyOf(AttrRef("b", "y")),
                           Literal(3)))
        assert expr.referenced_args() == {"a", "b"}

    def test_expression_str_forms(self):
        expr = Apply("unsuperclassify",
                     (Apply("composite", (AttrRef("bands", "data"),)),
                      Literal(12)))
        assert str(expr) == "unsuperclassify(composite(bands.data), 12)"
        assert str(AnyOf(AttrRef("b", "t"))) == "ANYOF b.t"
        assert str(ParamRef("cutoff")) == "$cutoff"


class TestProcessEvolution:
    def test_edited_requires_new_name(self):
        with pytest.raises(ProcessAlreadyDefinedError):
            _p20().edited("P20")

    def test_edited_leaves_original_untouched(self, manager):
        original = manager.processes.get("P20")
        edited = original.edited("P20_b", parameters={"k": 8})
        assert original.parameters == {}
        assert edited.parameters == {"k": 8}
        assert manager.processes.get("P20") is original

    def test_same_method_different_parameters_are_different(self):
        p_a = _p20().edited("P250", parameters={"cutoff": 250})
        p_b = _p20().edited("P200", parameters={"cutoff": 200})
        assert p_a.name != p_b.name and p_a.parameters != p_b.parameters
