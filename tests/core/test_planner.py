"""Tests for the retrieval planner (retrieve → interpolate → derive)."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import NonPrimitiveClass, RetrievalPlanner
from repro.errors import DerivationError, UnderivableError
from repro.figures import AFRICA
from repro.spatial import Box
from repro.temporal import AbsTime


@pytest.fixture()
def world(kernel):
    """Base 'field' class and derived 'mask' class with a process."""
    kernel.derivations.define_class(NonPrimitiveClass(
        name="field",
        attributes=(("data", "image"), ("spatialextent", "box"),
                    ("timestamp", "abstime")),
    ))
    kernel.derivations.define_class(NonPrimitiveClass(
        name="mask",
        attributes=(("data", "image"), ("spatialextent", "box"),
                    ("timestamp", "abstime")),
        derived_by="maskify",
    ))
    from repro.core import Apply, Argument, AttrRef, Literal, Process

    kernel.derivations.define_process(Process(
        name="maskify", output_class="mask",
        arguments=(Argument(name="src", class_name="field"),),
        mappings={
            "data": Apply("img_threshold", (AttrRef("src", "data"),
                                            Literal(0.5))),
            "spatialextent": AttrRef("src", "spatialextent"),
            "timestamp": AttrRef("src", "timestamp"),
        },
    ))
    return kernel


def _field(kernel, day=0, x=0.0, value=1.0, size=4):
    return kernel.store.store("field", {
        "data": Image.from_array(np.full((size, size), value), "float4"),
        "spatialextent": Box(x, 0, x + 10, 10),
        "timestamp": AbsTime(day),
    })


class TestDirectRetrieval:
    def test_stored_object_retrieved(self, world):
        obj = _field(world, day=5)
        result = world.planner.retrieve("field", temporal=AbsTime(5))
        assert result.path == "retrieve"
        assert result.object.oid == obj.oid

    def test_spatial_filter(self, world):
        _field(world, x=0.0)
        _field(world, x=40.0)
        result = world.planner.retrieve("field", spatial=Box(41, 1, 45, 5))
        assert result.path == "retrieve"
        assert len(result.objects) == 1

    def test_result_object_accessor_raises_on_plural(self, world):
        _field(world, day=1)
        _field(world, day=1, x=1.0)
        result = world.planner.retrieve("field", temporal=AbsTime(1))
        with pytest.raises(DerivationError):
            result.object


class TestInterpolation:
    def test_interpolates_between_snapshots(self, world):
        _field(world, day=0, value=0.0)
        _field(world, day=10, value=10.0)
        result = world.planner.retrieve("field", temporal=AbsTime(4))
        assert result.path == "interpolate"
        img = result.object["data"]
        assert np.allclose(img.data, 4.0, atol=1e-5)
        assert result.object["timestamp"] == AbsTime(4)

    def test_interpolated_object_is_stored(self, world):
        _field(world, day=0, value=0.0)
        _field(world, day=10, value=10.0)
        world.planner.retrieve("field", temporal=AbsTime(4))
        again = world.planner.retrieve("field", temporal=AbsTime(4))
        assert again.path == "retrieve"

    def test_no_bracket_no_interpolation(self, world):
        _field(world, day=0)
        with pytest.raises(UnderivableError):
            world.planner.retrieve("field", temporal=AbsTime(99))

    def test_derived_class_interpolation_priority(self, world):
        """A derived class with snapshots around the target interpolates
        before deriving (default fallback order)."""
        src = _field(world, day=0, value=0.0)
        world.derivations.execute_process("maskify", {"src": src})
        src2 = _field(world, day=10, value=0.9)
        world.derivations.execute_process("maskify", {"src": src2})
        result = world.planner.retrieve("mask", temporal=AbsTime(5))
        assert result.path == "interpolate"


class TestDerivation:
    def test_derives_when_missing(self, world):
        _field(world, day=3)
        result = world.planner.retrieve("mask", temporal=AbsTime(3))
        assert result.path == "derive"
        assert result.plan_steps == ("maskify",)
        assert len(result.tasks) == 1

    def test_underivable_without_base_data(self, world):
        with pytest.raises(UnderivableError):
            world.planner.retrieve("mask")

    def test_fallback_order_respected(self, world):
        planner = RetrievalPlanner(manager=world.derivations,
                                   fallback_order=("derive", "interpolate"))
        src = _field(world, day=0, value=0.0)
        world.derivations.execute_process("maskify", {"src": src})
        src2 = _field(world, day=10, value=0.9)
        world.derivations.execute_process("maskify", {"src": src2})
        _field(world, day=5)
        result = planner.retrieve("mask", temporal=AbsTime(5))
        assert result.path == "derive"

    def test_bad_fallback_order_rejected(self, world):
        with pytest.raises(DerivationError):
            RetrievalPlanner(manager=world.derivations,
                             fallback_order=("magic",))

    def test_derivation_records_tasks(self, world):
        _field(world)
        result = world.planner.retrieve("mask")
        producer = world.derivations.tasks.producer_of(result.object.oid)
        assert producer is not None
        assert producer.process_name == "maskify"


class TestBindingSearch:
    def test_distinct_objects_for_same_class_scalars(self, figure2_catalog):
        """P6 (NDVI) takes two avhrr_scene arguments; the planner must
        bind the red scene and the nir scene, not the same object twice."""
        kernel = figure2_catalog.kernel
        result = kernel.planner.retrieve("ndvi_c6")
        task = result.tasks[0] if result.tasks else \
            kernel.derivations.tasks.producer_of(result.objects[0].oid)
        red_oid = task.input_oids["red"][0]
        nir_oid = task.input_oids["nir"][0]
        assert red_oid != nir_oid
        assert kernel.store.get(red_oid)["band"] == "red"
        assert kernel.store.get(nir_oid)["band"] == "nir"

    def test_threshold_demand_fires_producer_repeatedly(self, figure2_catalog):
        """P7 needs >= 2 NDVI snapshots; deriving vegetation change from
        scratch must fire P6 twice over distinct year pairs."""
        kernel = figure2_catalog.kernel
        result = kernel.planner.retrieve("veg_change_pca_c7")
        assert result.path == "derive"
        stamps = {str(o["timestamp"]) for o in kernel.store.objects("ndvi_c6")}
        assert len(stamps) == 2


class TestExplain:
    def test_explain_paths(self, world):
        assert world.planner.explain("mask")["path"] == "unsatisfiable"
        _field(world, day=0)
        assert world.planner.explain("mask")["path"] == "derive"
        _field(world, day=10)
        exp = world.planner.explain("field", temporal=AbsTime(5))
        assert exp["path"] == "interpolate"
        obj = world.store.find("field", temporal=AbsTime(0))[0]
        exp = world.planner.explain("field", temporal=AbsTime(0))
        assert exp["path"] == "retrieve"
        assert exp["matches"] == 1
        # Every explanation reports the physical access path it priced.
        assert "access" in exp
        assert obj is not None

    def test_explain_has_no_side_effects(self, world):
        _field(world)
        before = len(world.derivations.tasks)
        world.planner.explain("mask")
        assert len(world.derivations.tasks) == before
        assert world.store.count("mask") == 0
