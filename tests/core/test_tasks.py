"""Tests for tasks and the task log."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import NonPrimitiveClass, TaskStatus, bindings_key
from repro.errors import TaskExecutionError
from repro.spatial import Box
from repro.temporal import AbsTime


SRC = NonPrimitiveClass(
    name="src", attributes=(("data", "image"), ("spatialextent", "box"),
                            ("timestamp", "abstime")),
)


@pytest.fixture()
def setup(kernel):
    kernel.derivations.define_class(SRC)
    objs = [
        kernel.store.store("src", {
            "data": Image.from_array(np.full((2, 2), float(i)), "float4"),
            "spatialextent": Box(0, 0, 1, 1),
            "timestamp": AbsTime(i),
        })
        for i in range(4)
    ]
    return kernel, objs


class TestBindingsKey:
    def test_set_arguments_order_insensitive(self, setup):
        _, objs = setup
        key_a = bindings_key("P", {"xs": [objs[0], objs[1]]})
        key_b = bindings_key("P", {"xs": [objs[1], objs[0]]})
        assert key_a == key_b

    def test_different_objects_different_key(self, setup):
        _, objs = setup
        assert bindings_key("P", {"x": objs[0]}) != \
            bindings_key("P", {"x": objs[1]})

    def test_process_name_in_key(self, setup):
        _, objs = setup
        assert bindings_key("P", {"x": objs[0]}) != \
            bindings_key("Q", {"x": objs[0]})


class TestTaskLog:
    def test_record_and_get(self, setup):
        kernel, objs = setup
        log = kernel.derivations.tasks
        task = log.record("P", {"x": objs[0]}, output_oids=(99,))
        assert log.get(task.task_id) is task
        assert task.succeeded
        assert task.all_input_oids() == {objs[0].oid}

    def test_get_unknown(self, kernel):
        with pytest.raises(TaskExecutionError):
            kernel.derivations.tasks.get(42)

    def test_memoization_lookup(self, setup):
        kernel, objs = setup
        log = kernel.derivations.tasks
        task = log.record("P", {"xs": [objs[0], objs[1]]}, output_oids=(99,))
        hit = log.find_memoized("P", {"xs": [objs[1], objs[0]]})
        assert hit is task
        assert log.find_memoized("P", {"xs": [objs[0], objs[2]]}) is None

    def test_producer_of(self, setup):
        kernel, objs = setup
        log = kernel.derivations.tasks
        task = log.record("P", {"x": objs[0]}, output_oids=(99,))
        assert log.producer_of(99) is task
        assert log.producer_of(objs[0].oid) is None

    def test_failures_recorded(self, setup):
        kernel, objs = setup
        log = kernel.derivations.tasks
        failure = log.record_failure("P", {"x": objs[0]}, error="boom")
        assert failure.status is TaskStatus.FAILED
        assert not failure.succeeded
        assert log.failed() == [failure]
        assert log.completed() == []
        # Failures never memoize.
        assert log.find_memoized("P", {"x": objs[0]}) is None

    def test_tasks_of_process(self, setup):
        kernel, objs = setup
        log = kernel.derivations.tasks
        log.record("P", {"x": objs[0]}, output_oids=(90,))
        log.record("Q", {"x": objs[1]}, output_oids=(91,))
        assert len(log.tasks_of_process("P")) == 1

    def test_describe(self, setup):
        kernel, objs = setup
        log = kernel.derivations.tasks
        task = log.record("P", {"x": objs[0]}, output_oids=(99,))
        text = task.describe()
        assert "P(" in text and "[completed]" in text
