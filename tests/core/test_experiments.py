"""Tests for the experiment manager (high-level layer)."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import Apply, Argument, AttrRef, Literal, NonPrimitiveClass, Process
from repro.errors import UnknownConceptError, UnknownExperimentError
from repro.spatial import Box
from repro.temporal import AbsTime


@pytest.fixture()
def lab(kernel):
    kernel.derivations.define_class(NonPrimitiveClass(
        name="raw",
        attributes=(("data", "image"), ("spatialextent", "box"),
                    ("timestamp", "abstime")),
    ))
    kernel.derivations.define_class(NonPrimitiveClass(
        name="product",
        attributes=(("data", "image"), ("spatialextent", "box"),
                    ("timestamp", "abstime")),
        derived_by="refine",
    ))
    kernel.derivations.define_process(Process(
        name="refine", output_class="product",
        arguments=(Argument(name="src", class_name="raw"),),
        mappings={
            "data": Apply("img_scale", (AttrRef("src", "data"), Literal(3.0))),
            "spatialextent": AttrRef("src", "spatialextent"),
            "timestamp": AttrRef("src", "timestamp"),
        },
    ))
    kernel.concepts.define("refined_stuff")
    raw = kernel.store.store("raw", {
        "data": Image.from_array(np.ones((2, 2)), "float4"),
        "spatialextent": Box(0, 0, 1, 1),
        "timestamp": AbsTime(0),
    })
    return kernel, raw


class TestLifecycle:
    def test_begin_and_get(self, lab):
        kernel, _ = lab
        exp = kernel.experiments.begin(
            name="study-1", investigator="qiu",
            concepts={"refined_stuff"}, parameters={"k": 12},
        )
        assert kernel.experiments.get(exp.experiment_id) is exp
        assert len(kernel.experiments) == 1

    def test_unknown_concept_rejected(self, lab):
        kernel, _ = lab
        with pytest.raises(UnknownConceptError):
            kernel.experiments.begin(name="bad", concepts={"ghost"})

    def test_unknown_experiment(self, lab):
        kernel, _ = lab
        with pytest.raises(UnknownExperimentError):
            kernel.experiments.get(99)

    def test_annotations(self, lab):
        kernel, _ = lab
        exp = kernel.experiments.begin(name="study")
        exp.annotate("first pass looks noisy")
        assert "first pass looks noisy" in exp.describe()


class TestRunAndReproduce:
    def test_run_task_records_in_experiment(self, lab):
        kernel, raw = lab
        exp = kernel.experiments.begin(name="study")
        result = kernel.experiments.run_task(exp, "refine", {"src": raw})
        assert exp.task_ids == [result.task.task_id]

    def test_reproduce_reruns_all_tasks(self, lab):
        kernel, raw = lab
        exp = kernel.experiments.begin(name="study")
        original = kernel.experiments.run_task(exp, "refine", {"src": raw})
        rerun = kernel.experiments.reproduce(exp.experiment_id)
        assert len(rerun) == 1
        assert rerun[0].output["data"] == original.output["data"]
        assert rerun[0].output.oid != original.output.oid  # fresh object
        assert not rerun[0].reused

    def test_experiments_on_concept(self, lab):
        kernel, _ = lab
        exp = kernel.experiments.begin(name="s1", concepts={"refined_stuff"})
        kernel.experiments.begin(name="s2")
        found = kernel.experiments.experiments_on("refined_stuff")
        assert [e.experiment_id for e in found] == [exp.experiment_id]

    def test_memoized_rerun_within_experiment(self, lab):
        kernel, raw = lab
        exp = kernel.experiments.begin(name="study")
        first = kernel.experiments.run_task(exp, "refine", {"src": raw})
        second = kernel.experiments.run_task(exp, "refine", {"src": raw})
        assert second.reused
        assert second.output.oid == first.output.oid
        # Both runs recorded in the experiment (the scientist did ask twice).
        assert exp.task_ids == [first.task.task_id, first.task.task_id]
