"""Tests for kernel checkpointing (save/load)."""

import numpy as np
import pytest

from repro.core import load_kernel, save_kernel
from repro.errors import GaeaError
from repro.figures import build_figure2, build_figure5, populate_scenes


@pytest.fixture()
def populated():
    catalog = build_figure2()
    populate_scenes(catalog, seed=67, size=16, years=(1988, 1989))
    build_figure5(catalog)
    catalog.session.execute_one("SELECT FROM desert_rain250_c2")
    return catalog


class TestRoundtrip:
    def test_save_and_load(self, populated, tmp_path):
        path = tmp_path / "gaea.ckpt"
        written = save_kernel(populated.kernel, path)
        assert written > 0
        restored = load_kernel(path)
        assert restored.classes.names() == populated.kernel.classes.names()
        assert restored.derivations.processes.names() == \
            populated.kernel.derivations.processes.names()
        assert restored.concepts.names() == populated.kernel.concepts.names()
        assert len(restored.derivations.tasks) == \
            len(populated.kernel.derivations.tasks)

    def test_objects_survive(self, populated, tmp_path):
        path = tmp_path / "gaea.ckpt"
        save_kernel(populated.kernel, path)
        restored = load_kernel(path)
        original = populated.kernel.store.objects("desert_rain250_c2")[0]
        reloaded = restored.store.objects("desert_rain250_c2")[0]
        assert np.array_equal(original["data"].data, reloaded["data"].data)

    def test_restored_kernel_derives(self, populated, tmp_path):
        """A restored kernel is fully operational: operators re-registered,
        planner works, new derivations record tasks."""
        path = tmp_path / "gaea.ckpt"
        save_kernel(populated.kernel, path)
        restored = load_kernel(path)
        result = restored.planner.retrieve("desert_rain200_c3")
        assert result.path == "derive"
        assert restored.derivations.tasks.producer_of(
            result.objects[0].oid
        ) is not None

    def test_memoization_survives(self, populated, tmp_path):
        path = tmp_path / "gaea.ckpt"
        save_kernel(populated.kernel, path)
        restored = load_kernel(path)
        # Re-deriving the already-derived desert reuses the saved task.
        rain = restored.store.objects("rainfall_annual")[0]
        result = restored.derivations.execute_process("P2", {"rain": rain})
        assert result.reused

    def test_compounds_survive(self, populated, tmp_path):
        path = tmp_path / "gaea.ckpt"
        save_kernel(populated.kernel, path)
        restored = load_kernel(path)
        assert "land-change-detection" in restored.derivations.compounds


class TestValidation:
    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_a_ckpt"
        path.write_bytes(b"hello world")
        with pytest.raises(GaeaError):
            load_kernel(path)

    def test_rejects_truncated_checkpoint(self, populated, tmp_path):
        path = tmp_path / "gaea.ckpt"
        save_kernel(populated.kernel, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GaeaError):
            load_kernel(path)
