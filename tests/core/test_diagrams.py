"""Tests for derivation-diagram rendering (browse/compare, conclusion)."""

import pytest

from repro.core import DerivationNet
from repro.core.diagrams import (
    lineage_to_dot,
    lineage_to_text,
    net_to_dot,
    net_to_text,
)
from repro.figures import build_figure2, populate_scenes


@pytest.fixture()
def net():
    net = DerivationNet()
    net.add_transition("P6", [("avhrr", 2)], "ndvi")
    net.add_transition("P7", [("ndvi", 2)], "change")
    return net


class TestNetRendering:
    def test_dot_structure(self, net):
        dot = net_to_dot(net)
        assert dot.startswith("digraph derivation_net {")
        assert '"avhrr" -> "P6" [label="2"];' in dot
        assert '"P6" -> "ndvi";' in dot
        assert '"P6" [shape=box];' in dot
        assert dot.endswith("}")

    def test_dot_marks_tokens(self, net):
        dot = net_to_dot(net, marking={"avhrr": 3})
        assert "style=filled" in dot
        assert "3 token(s)" in dot

    def test_text_listing(self, net):
        text = net_to_text(net)
        assert "P6: avhrr(>=2) -> ndvi" in text
        assert "P7: ndvi(>=2) -> change" in text

    def test_isolated_places_reported(self, net):
        net.add_place("census")
        assert "isolated places: census" in net_to_text(net)


class TestLineageRendering:
    @pytest.fixture()
    def catalog(self):
        catalog = build_figure2()
        populate_scenes(catalog, seed=51, size=16, years=(1988,))
        catalog.session.execute_one("SELECT FROM desert_smoothed_c5")
        return catalog

    def test_lineage_dot(self, catalog):
        kernel = catalog.kernel
        obj = kernel.store.objects("desert_smoothed_c5")[0]
        lineage = kernel.provenance.lineage(obj.oid)
        dot = lineage_to_dot(lineage, store=kernel.store)
        assert "digraph lineage {" in dot
        assert "P2" in dot and "P5" in dot
        assert f"o{obj.oid} [" in dot
        assert "penwidth=2" in dot  # the root is emphasized
        assert "style=dashed" in dot  # base objects dashed

    def test_lineage_text_tree(self, catalog):
        kernel = catalog.kernel
        obj = kernel.store.objects("desert_smoothed_c5")[0]
        lineage = kernel.provenance.lineage(obj.oid)
        text = lineage_to_text(lineage, store=kernel.store)
        assert text.splitlines()[0].startswith("desert_smoothed_c5")
        assert "<- P5" in text
        assert "<- P2" in text
        assert "(base)" in text

    def test_base_object_renders(self, catalog):
        kernel = catalog.kernel
        base = kernel.store.objects("rainfall_annual")[0]
        lineage = kernel.provenance.lineage(base.oid)
        assert "(base)" in lineage_to_text(lineage, store=kernel.store)
        dot = lineage_to_dot(lineage, store=kernel.store)
        assert f"o{base.oid}" in dot
