"""Tests for the derivation net (modified Petri nets, paper §2.1.6)."""

import pytest

from repro.core import DerivationNet, InputArc
from repro.errors import DerivationError, UnderivableError


@pytest.fixture()
def chain_net():
    """base -> P1 -> mid -> P2 -> top."""
    net = DerivationNet()
    net.add_transition("P1", [("base", 1)], "mid")
    net.add_transition("P2", [("mid", 1)], "top")
    return net


@pytest.fixture()
def pca_net():
    """avhrr -> ndvi (needs 2 scenes); ndvi x2 -> change (threshold 2)."""
    net = DerivationNet()
    net.add_transition("ndvi", [("avhrr", 2)], "ndvi_cls")
    net.add_transition("pca", [InputArc("ndvi_cls", 2)], "change")
    return net


class TestConstruction:
    def test_places_created_implicitly(self, chain_net):
        assert chain_net.places == {"base", "mid", "top"}

    def test_duplicate_transition_rejected(self, chain_net):
        with pytest.raises(DerivationError):
            chain_net.add_transition("P1", [("base", 1)], "mid")

    def test_zero_threshold_rejected(self):
        net = DerivationNet()
        with pytest.raises(DerivationError):
            net.add_transition("T", [("a", 0)], "b")

    def test_producers_of(self, chain_net):
        assert [t.name for t in chain_net.producers_of("mid")] == ["P1"]
        assert chain_net.producers_of("base") == []


class TestFiring:
    def test_non_consuming_fire(self, chain_net):
        marking = {"base": 1}
        after = chain_net.fire(marking, "P1")
        assert after == {"base": 1, "mid": 1}  # base token kept

    def test_consuming_fire(self, chain_net):
        after = chain_net.fire({"base": 1}, "P1", consuming=True)
        assert after == {"base": 0, "mid": 1}

    def test_fire_disabled_rejected(self, chain_net):
        with pytest.raises(DerivationError):
            chain_net.fire({}, "P1")

    def test_threshold_enabling(self, pca_net):
        assert not pca_net.transition("ndvi").enabled({"avhrr": 1})
        assert pca_net.transition("ndvi").enabled({"avhrr": 2})
        assert pca_net.transition("ndvi").enabled({"avhrr": 5})

    def test_guard_blocks_firing(self):
        net = DerivationNet()
        net.add_transition("T", [("a", 1)], "b",
                           guard=lambda m: m.get("a", 0) >= 3)
        assert not net.transition("T").enabled({"a": 1})
        assert net.transition("T").enabled({"a": 3})


class TestForwardAnalysis:
    def test_reachable_chain(self, chain_net):
        assert chain_net.reachable({"base": 1}, "top")
        assert not chain_net.reachable({}, "top")

    def test_reachable_unknown_place(self, chain_net):
        with pytest.raises(DerivationError):
            chain_net.reachable({}, "ghost")

    def test_closure_grants_producible_supply(self, pca_net):
        # One ndvi firing yields a place that must still satisfy the
        # downstream threshold of 2 (distinct firings exist at object
        # level), so closure marks it producible.
        closure = pca_net.forward_closure({"avhrr": 2})
        assert closure["change"] > 0

    def test_closure_respects_base_thresholds(self, pca_net):
        closure = pca_net.forward_closure({"avhrr": 1})
        assert closure.get("ndvi_cls", 0) == 0
        assert closure.get("change", 0) == 0


class TestBackwardPlanning:
    def test_plan_chain(self, chain_net):
        plan = chain_net.backward_plan("top", {"base": 1})
        assert plan.steps == ("P1", "P2")
        assert plan.initial_places == {"base"}

    def test_plan_prefers_stored_data(self, chain_net):
        plan = chain_net.backward_plan("top", {"mid": 1})
        assert plan.steps == ("P2",)

    def test_plan_empty_when_target_stored(self, chain_net):
        plan = chain_net.backward_plan("top", {"top": 1})
        assert plan.steps == ()

    def test_underivable(self, chain_net):
        with pytest.raises(UnderivableError):
            chain_net.backward_plan("top", {})

    def test_or_choice(self):
        net = DerivationNet()
        net.add_transition("via_a", [("a", 1)], "goal")
        net.add_transition("via_b", [("b", 1)], "goal")
        plan = net.backward_plan("goal", {"b": 1})
        assert plan.steps == ("via_b",)

    def test_and_requirements(self):
        net = DerivationNet()
        net.add_transition("join", [("a", 1), ("b", 1)], "goal")
        plan = net.backward_plan("goal", {"a": 1, "b": 1})
        assert plan.steps == ("join",)
        with pytest.raises(UnderivableError):
            net.backward_plan("goal", {"a": 1})

    def test_diamond_plan_serializes_once(self):
        net = DerivationNet()
        net.add_transition("left", [("base", 1)], "l")
        net.add_transition("right", [("base", 1)], "r")
        net.add_transition("join", [("l", 1), ("r", 1)], "goal")
        plan = net.backward_plan("goal", {"base": 1})
        assert sorted(plan.steps[:2]) == ["left", "right"]
        assert plan.steps[2] == "join"

    def test_cycle_bottoms_out(self):
        # P5-style self-derivation: c5 from c2, c2 refinable from c5.
        net = DerivationNet()
        net.add_transition("refine", [("c2", 1)], "c5")
        net.add_transition("back", [("c5", 1)], "c2")
        plan = net.backward_plan("c5", {"c2": 1})
        assert plan.steps == ("refine",)
        with pytest.raises(UnderivableError):
            net.backward_plan("c5", {})

    def test_threshold_via_producible_place(self, pca_net):
        plan = pca_net.backward_plan("change", {"avhrr": 2})
        assert plan.steps == ("ndvi", "pca")

    def test_plan_replay_non_consuming(self, chain_net):
        plan = chain_net.backward_plan("top", {"base": 1})
        final = chain_net.replay(plan, {"base": 1})
        assert final["top"] == 1 and final["base"] == 1

    def test_consuming_replay_ablation(self):
        """The EXP-B ablation: a plan reusing an input twice fails under
        classical consuming semantics but succeeds under the paper's."""
        net = DerivationNet()
        net.add_transition("mk_l", [("base", 1)], "l")
        net.add_transition("mk_r", [("base", 1)], "r")
        net.add_transition("join", [("l", 1), ("r", 1)], "goal")
        plan = net.backward_plan("goal", {"base": 1})
        ok = net.replay(plan, {"base": 1}, consuming=False)
        assert ok["goal"] == 1
        with pytest.raises(DerivationError):
            net.replay(plan, {"base": 1}, consuming=True)

    def test_initial_marking_for(self, pca_net):
        needed = pca_net.initial_marking_for("change", {"avhrr": 5})
        assert needed == {"avhrr": 2}


class TestFromProcesses:
    def test_built_from_figure2(self, figure2_catalog):
        kernel = figure2_catalog.kernel
        net = kernel.derivations.derivation_net()
        assert set(net.transitions) == set(figure2_catalog.process_names)
        # P20 takes 3 TM bands.
        p20 = net.transition("P20")
        assert p20.inputs == (InputArc("landsat_tm_rectified", 3),)
        # P6 takes two distinct avhrr scenes (red + nir).
        p6 = net.transition("P6")
        assert p6.inputs == (InputArc("avhrr_scene", 2),)

    def test_every_class_is_a_place(self, figure2_catalog):
        net = figure2_catalog.kernel.derivations.derivation_net()
        assert set(figure2_catalog.class_names) <= net.places
