"""Tests for compound processes and their expansion."""

import pytest

from repro.core import Argument, CompoundProcess, CompoundRegistry, Step
from repro.errors import CompoundExpansionError, UnknownProcessError
from repro.figures import build_figure2, build_figure5, populate_scenes


class TestValidation:
    def _args(self):
        return (Argument(name="x", class_name="c_in", is_set=False),)

    def test_duplicate_step_names(self):
        with pytest.raises(CompoundExpansionError):
            CompoundProcess(
                name="cp", output_class="c_out", arguments=self._args(),
                steps=(Step(name="s", process="P", bindings={"a": "@x"}),
                       Step(name="s", process="Q", bindings={"a": "@x"})),
                output_step="s",
            )

    def test_output_step_must_exist(self):
        with pytest.raises(CompoundExpansionError):
            CompoundProcess(
                name="cp", output_class="c_out", arguments=self._args(),
                steps=(Step(name="s", process="P", bindings={"a": "@x"}),),
                output_step="ghost",
            )

    def test_unknown_argument_reference(self):
        with pytest.raises(CompoundExpansionError):
            CompoundProcess(
                name="cp", output_class="c_out", arguments=self._args(),
                steps=(Step(name="s", process="P", bindings={"a": "@ghost"}),),
                output_step="s",
            )

    def test_forward_step_reference(self):
        with pytest.raises(CompoundExpansionError):
            CompoundProcess(
                name="cp", output_class="c_out", arguments=self._args(),
                steps=(Step(name="s1", process="P", bindings={"a": "s2"}),
                       Step(name="s2", process="Q", bindings={"a": "@x"})),
                output_step="s2",
            )


class TestExpansion:
    @pytest.fixture()
    def catalog(self):
        catalog = build_figure2()
        build_figure5(catalog)
        return catalog

    def test_figure5_expansion(self, catalog):
        derivations = catalog.kernel.derivations
        compound = derivations.compounds.get("land-change-detection")
        steps = compound.expand(derivations.processes, derivations.compounds)
        assert [s.process for s in steps] == ["P20", "P20", "P21"]
        assert [s.label for s in steps] == [
            "classify_early", "classify_late", "compare"
        ]
        compare = steps[2]
        assert compare.bindings == {"later": "classify_late",
                                    "earlier": "classify_early"}

    def test_nested_compound_expansion(self, catalog):
        derivations = catalog.kernel.derivations
        catalog.session.execute("""
        DEFINE COMPOUND PROCESS nested-change
        OUTPUT land_cover_changes_c21
        ARGUMENT ( SETOF landsat_tm_rectified a >= 3,
                   SETOF landsat_tm_rectified b >= 3 )
        STEPS {
          inner: land-change-detection ( tm_early = $a, tm_late = $b );
        }
        RESULT inner
        """)
        compound = derivations.compounds.get("nested-change")
        steps = compound.expand(derivations.processes, derivations.compounds)
        assert [s.process for s in steps] == ["P20", "P20", "P21"]
        assert steps[0].label == "inner/classify_early"
        # Inner compound arguments re-wired to the outer sources.
        assert steps[0].bindings == {"bands": "@a"}
        assert steps[2].bindings == {"later": "inner/classify_late",
                                     "earlier": "inner/classify_early"}

    def test_unknown_process_in_step(self, catalog):
        derivations = catalog.kernel.derivations
        compound = CompoundProcess(
            name="broken", output_class="land_cover_c20",
            arguments=(Argument(name="x", class_name="landsat_tm_rectified",
                                is_set=True, min_cardinality=3),),
            steps=(Step(name="s", process="no-such", bindings={"a": "@x"}),),
            output_step="s",
        )
        with pytest.raises(UnknownProcessError):
            compound.expand(derivations.processes, derivations.compounds)

    def test_recursive_compound_detected(self):
        registry = CompoundRegistry()
        from repro.core import ProcessRegistry
        from repro.core.classes import ClassRegistry
        from repro.adt import make_standard_registries

        types, _ = make_standard_registries()
        processes = ProcessRegistry(classes=ClassRegistry(types=types))
        loop = CompoundProcess(
            name="loop", output_class="c",
            arguments=(Argument(name="x", class_name="c"),),
            steps=(Step(name="again", process="loop", bindings={"x": "@x"}),),
            output_step="again",
        )
        registry.define(loop)
        with pytest.raises(CompoundExpansionError):
            loop.expand(processes, registry)


class TestExecution:
    def test_cannot_apply_compound_directly_as_process(self):
        """§2.1.4: a compound is not in the primitive-process registry, so
        execute_process cannot run it — it must be expanded."""
        catalog = build_figure2()
        build_figure5(catalog)
        derivations = catalog.kernel.derivations
        with pytest.raises(UnknownProcessError):
            derivations.execute_process("land-change-detection", {})

    def test_execute_compound_end_to_end(self):
        catalog = build_figure2()
        populate_scenes(catalog, size=16, years=(1988, 1989))
        build_figure5(catalog)
        kernel = catalog.kernel
        scenes = kernel.store.objects("landsat_tm_rectified")
        early = [o for o in scenes if o["timestamp"].year == 1988]
        late = [o for o in scenes if o["timestamp"].year == 1989]
        result = kernel.derivations.execute_compound(
            "land-change-detection", {"tm_early": early, "tm_late": late}
        )
        assert result.output.class_name == "land_cover_changes_c21"
        # Three tasks recorded: two classifications and one comparison.
        names = [t.process_name for t in kernel.derivations.tasks]
        assert names == ["P20", "P20", "P21"]

    def test_execute_compound_unbound_argument(self):
        catalog = build_figure2()
        build_figure5(catalog)
        with pytest.raises(CompoundExpansionError):
            catalog.kernel.derivations.execute_compound(
                "land-change-detection", {"tm_early": []}
            )

    def test_describe(self):
        catalog = build_figure2()
        build_figure5(catalog)
        text = catalog.kernel.derivations.compounds.get(
            "land-change-detection"
        ).describe()
        assert "DEFINE COMPOUND PROCESS land-change-detection" in text
        assert "RESULT compare" in text
