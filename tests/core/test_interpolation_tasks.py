"""Interpolation as a first-class derivation: tasks and replay."""

import numpy as np
import pytest

from repro.adt import Image
from repro.core import NonPrimitiveClass
from repro.spatial import Box
from repro.temporal import AbsTime


FIELD = NonPrimitiveClass(
    name="field",
    attributes=(("area", "char16"), ("data", "image"),
                ("spatialextent", "box"), ("timestamp", "abstime")),
)


@pytest.fixture()
def world(kernel):
    kernel.derivations.define_class(FIELD)
    return kernel


def _tile(kernel, box=Box(0, 0, 10, 10), value=1.0, day=0):
    return kernel.store.store("field", {
        "area": "africa",
        "data": Image.from_array(np.full((8, 8), float(value)), "float4"),
        "spatialextent": box,
        "timestamp": AbsTime(day),
    })


class TestTemporalInterpolationTasks:
    def test_task_recorded(self, world):
        a = _tile(world, value=0.0, day=0)
        b = _tile(world, value=10.0, day=10)
        result = world.planner.retrieve("field", temporal=AbsTime(4))
        assert result.path == "interpolate"
        [task] = result.tasks
        assert task.process_name == "interpolate-temporal"
        assert task.all_input_oids() == {a.oid, b.oid}
        assert task.parameters["target"] == str(AbsTime(4))

    def test_lineage_includes_interpolation(self, world):
        _tile(world, value=0.0, day=0)
        _tile(world, value=10.0, day=10)
        result = world.planner.retrieve("field", temporal=AbsTime(4))
        lineage = world.provenance.lineage(result.object.oid)
        assert lineage.processes_used() == ["interpolate-temporal"]
        assert lineage.depth == 1

    def test_replay(self, world):
        _tile(world, value=0.0, day=0)
        _tile(world, value=10.0, day=10)
        result = world.planner.retrieve("field", temporal=AbsTime(4))
        rerun = world.derivations.reproduce_task(result.tasks[0].task_id)
        assert rerun.output["data"] == result.object["data"]
        assert rerun.output.oid != result.object.oid


class TestSpatialInterpolationTasks:
    def test_task_recorded_and_replayed(self, world):
        _tile(world, box=Box(0, 0, 10, 10), value=1.0)
        _tile(world, box=Box(10, 0, 20, 10), value=3.0)
        query = Box(5, 2, 15, 8)
        result = world.planner.retrieve("field", spatial=query,
                                        spatial_coverage=True)
        [task] = result.tasks
        assert task.process_name == "interpolate-spatial"
        assert task.parameters["region"] == str(query)
        rerun = world.derivations.reproduce_task(task.task_id)
        assert rerun.output["data"] == result.object["data"]

    def test_audit_trail_complete(self, world):
        """Every synthesized object has a producer (the §1 guarantee now
        extends to interpolated data)."""
        _tile(world, box=Box(0, 0, 10, 10), value=1.0)
        _tile(world, box=Box(10, 0, 20, 10), value=3.0)
        world.planner.retrieve("field", spatial=Box(5, 2, 15, 8),
                               spatial_coverage=True)
        base_extents = {Box(0, 0, 10, 10), Box(10, 0, 20, 10)}
        for obj in world.store.objects("field"):
            producer = world.derivations.tasks.producer_of(obj.oid)
            is_base = obj["spatialextent"] in base_extents
            assert (producer is None) == is_base
